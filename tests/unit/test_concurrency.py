"""Unit tests for locks, RCU, leases and failpoints."""

import threading
import time

import pytest

from repro.concurrency import RCU, FailpointRegistry, Lease, RWLock, SpinLock
from repro.concurrency.lease import LeaseExpired


class TestSpinLock:
    def test_mutual_exclusion(self):
        lock = SpinLock("t")
        counter = {"v": 0}

        def worker():
            for _ in range(500):
                with lock:
                    v = counter["v"]
                    counter["v"] = v + 1

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 2000

    def test_non_reentrant_detected(self):
        lock = SpinLock()
        with lock:
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_release_by_non_owner_rejected(self):
        lock = SpinLock()
        lock.acquire()
        err = []

        def other():
            try:
                lock.release()
            except RuntimeError as e:
                err.append(e)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert err
        lock.release()

    def test_timeout(self):
        lock = SpinLock()
        lock.acquire()
        got = []

        def other():
            got.append(lock.acquire(timeout=0.05))

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert got == [False]
        lock.release()

    def test_held_by_me(self):
        lock = SpinLock()
        assert not lock.held_by_me()
        with lock:
            assert lock.held_by_me()


class TestRWLock:
    def test_concurrent_readers(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=2)

        def reader():
            with lock.read():
                inside.wait()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(2)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        lock.acquire_write()
        got = []

        def reader():
            got.append(lock.acquire_read(timeout=0.05))

        t = threading.Thread(target=reader)
        t.start()
        t.join()
        assert got == [False]
        lock.release_write()

    def test_writer_excludes_writer(self):
        lock = RWLock()
        lock.acquire_write()
        assert lock.write_held_by_me()
        got = []

        def writer():
            got.append(lock.acquire_write(timeout=0.05))

        t = threading.Thread(target=writer)
        t.start()
        t.join()
        assert got == [False]
        lock.release_write()

    def test_writer_preference(self):
        """Once a writer waits, new readers block — release can't be starved."""
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        order = []

        def writer():
            writer_started.set()
            lock.acquire_write()
            order.append("w")
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("r")
            lock.release_read()

        tw = threading.Thread(target=writer)
        tw.start()
        writer_started.wait()
        time.sleep(0.05)  # let the writer reach wait_for
        tr = threading.Thread(target=late_reader)
        tr.start()
        time.sleep(0.05)
        lock.release_read()
        tw.join(2)
        tr.join(2)
        assert order[0] == "w"

    def test_upgrade_rejected(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                # would deadlock on real hardware; we detect it
                lock.acquire_read()


class TestRCU:
    def test_synchronize_waits_for_reader(self):
        rcu = RCU()
        entered = threading.Event()
        leave = threading.Event()
        done = []

        def reader():
            with rcu.read():
                entered.set()
                leave.wait(2)

        def updater():
            rcu.synchronize()
            done.append(True)

        tr = threading.Thread(target=reader)
        tr.start()
        entered.wait(2)
        tu = threading.Thread(target=updater)
        tu.start()
        time.sleep(0.05)
        assert not done  # grace period not over while reader inside
        leave.set()
        tu.join(2)
        tr.join(2)
        assert done == [True]

    def test_new_reader_does_not_block_grace_period(self):
        rcu = RCU()
        entered = threading.Event()
        release_new = threading.Event()

        def late_reader():
            # enters AFTER synchronize started -> belongs to new epoch
            entered.wait(2)
            with rcu.read():
                release_new.wait(2)

        t = threading.Thread(target=late_reader)
        t.start()
        entered.set()
        time.sleep(0.02)
        rcu.synchronize(timeout=2)  # must not wait for the late reader
        release_new.set()
        t.join(2)

    def test_call_rcu_deferred(self):
        rcu = RCU()
        freed = []
        entered = threading.Event()
        leave = threading.Event()

        def reader():
            with rcu.read():
                entered.set()
                leave.wait(2)

        t = threading.Thread(target=reader)
        t.start()
        entered.wait(2)
        rcu.call_rcu(lambda: freed.append("node"))
        assert rcu.pending_callbacks() == 1
        assert not freed
        leave.set()
        t.join(2)
        rcu.synchronize()
        assert freed == ["node"]

    def test_nested_read_sections(self):
        rcu = RCU()
        rcu.read_lock()
        rcu.read_lock()
        rcu.read_unlock()
        assert rcu.in_read_section()
        rcu.read_unlock()
        assert not rcu.in_read_section()

    def test_synchronize_inside_reader_rejected(self):
        rcu = RCU()
        with rcu.read():
            with pytest.raises(RuntimeError):
                rcu.synchronize()

    def test_barrier_runs_all_callbacks(self):
        rcu = RCU()
        freed = []
        for i in range(5):
            rcu.call_rcu(lambda i=i: freed.append(i))
        rcu.barrier()
        assert sorted(freed) == [0, 1, 2, 3, 4]


class TestLease:
    def make(self, duration=10.0):
        self.clock = {"t": 0.0}
        return Lease("rename", duration=duration, now_fn=lambda: self.clock["t"])

    def test_grant_and_exclude(self):
        lease = self.make()
        assert lease.try_acquire("app1")
        assert not lease.try_acquire("app2")
        assert lease.held_by() == "app1"

    def test_release_then_regrant(self):
        lease = self.make()
        lease.try_acquire("app1")
        lease.release("app1")
        assert lease.try_acquire("app2")

    def test_expiry_allows_steal(self):
        lease = self.make(duration=5.0)
        lease.try_acquire("app1")
        self.clock["t"] = 6.0
        assert lease.try_acquire("app2")
        assert lease.expirations == 1

    def test_stale_holder_release_fails(self):
        lease = self.make(duration=5.0)
        lease.try_acquire("app1")
        self.clock["t"] = 6.0
        lease.try_acquire("app2")
        with pytest.raises(LeaseExpired):
            lease.release("app1")

    def test_check_detects_expiry(self):
        lease = self.make(duration=5.0)
        lease.try_acquire("app1")
        lease.check("app1")
        self.clock["t"] = 6.0
        with pytest.raises(LeaseExpired):
            lease.check("app1")

    def test_reacquire_by_holder(self):
        lease = self.make()
        assert lease.try_acquire("app1")
        assert lease.try_acquire("app1")


class TestFailpoints:
    def test_noop_when_uninstalled(self):
        reg = FailpointRegistry()
        reg.hit("nothing")  # no exception

    def test_hook_and_count(self):
        reg = FailpointRegistry()
        seen = []
        reg.install("p", seen.append)
        reg.hit("p", 1)
        reg.hit("p", 2)
        assert seen == [1, 2]
        assert reg.count("p") == 2
        reg.remove("p")
        reg.hit("p", 3)
        assert seen == [1, 2]

    def test_once(self):
        reg = FailpointRegistry()
        seen = []
        reg.once("p", seen.append)
        reg.hit("p", "a")
        reg.hit("p", "b")
        assert seen == ["a"]

    def test_park_choreography(self):
        reg = FailpointRegistry()
        point = reg.park("p", timeout=2.0)
        log = []

        def victim():
            log.append("before")
            reg.hit("p")
            log.append("after")

        t = threading.Thread(target=victim)
        t.start()
        assert point.wait_arrived(2)
        log.append("interleaved")
        point.release()
        t.join(2)
        assert log == ["before", "interleaved", "after"]


class TestLeaseBackoff:
    def test_release_by_never_holder_raises(self):
        lease = Lease("rename", duration=10.0)
        lease.try_acquire("app1")
        with pytest.raises(LeaseExpired):
            lease.release("intruder")
        assert lease.held_by() == "app1"  # the real holder is unaffected

    def test_acquire_backs_off_exponentially(self, monkeypatch):
        from repro.concurrency import lease as lease_mod

        clock = {"t": 0.0}
        lease = Lease("rename", duration=100.0, now_fn=lambda: clock["t"])
        lease.try_acquire("hoarder")
        sleeps = []

        def fake_sleep(d):
            sleeps.append(d)
            clock["t"] += d

        monkeypatch.setattr(lease_mod.time, "monotonic", lambda: clock["t"])
        monkeypatch.setattr(lease_mod.time, "sleep", fake_sleep)
        assert not lease.acquire("other", timeout=1.0, poll=0.001)
        # Doubles from poll and caps at poll*16 — far fewer wakeups than the
        # old fixed-interval poll (1000 sleeps for this timeout).
        assert sleeps[0] == pytest.approx(0.001)
        assert sleeps[1] == pytest.approx(0.002)
        assert sleeps[2] == pytest.approx(0.004)
        assert max(sleeps) <= 0.016 + 1e-12
        assert len(sleeps) < 100

    def test_acquire_succeeds_after_release_despite_backoff(self):
        lease = Lease("rename", duration=10.0)
        lease.try_acquire("first")
        got = []

        def waiter():
            got.append(lease.acquire("second", timeout=2.0, poll=0.001))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        lease.release("first")
        t.join(3)
        assert got == [True]


class TestDelegationTable:
    def make(self, duration=5.0):
        from repro.concurrency import DelegationTable

        self.clock = {"t": 0.0}
        return DelegationTable("deleg", duration=duration,
                               now_fn=lambda: self.clock["t"])

    def test_grant_hit_and_holder(self):
        table = self.make()
        table.grant(7, "app1")
        assert table.valid(7, "app1")
        assert not table.valid(7, "app2")  # wrong holder, no hit
        assert table.holder(7) == "app1"
        assert table.hits == 1
        assert len(table) == 1

    def test_expiry_invalidates_and_drops(self):
        table = self.make(duration=5.0)
        table.grant(7, "app1")
        self.clock["t"] = 6.0
        assert not table.valid(7, "app1")
        assert table.expirations == 1
        assert len(table) == 0

    def test_revoke_returns_holder(self):
        table = self.make()
        table.grant(7, "app1")
        assert table.revoke(7) == "app1"
        assert table.revoke(7) is None
        assert table.revocations == 1
        assert not table.valid(7, "app1")

    def test_live_lists_entries(self):
        table = self.make()
        table.grant(1, "a")
        table.grant(2, "b")
        assert sorted(table.live()) == [1, 2]
