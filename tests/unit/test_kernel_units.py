"""Unit tests for the kernel components: mapping, permissions, policies,
shadow bookkeeping, verifier rejection cases, controller syscalls."""

import pytest

from repro.core.config import ARCKFS_PLUS
from repro.errors import (
    CorruptionDetected,
    InvalidArgument,
    NoEntry,
    NoSpace,
    PermissionDenied,
    SimulatedBusError,
)
from repro.kernel.controller import KernelController
from repro.kernel.permissions import READ, WRITE, check_access, may_read, may_write
from repro.kernel.policy import MarkInaccessiblePolicy
from repro.pm.device import PMDevice
from repro.pm.mapping import Mapping
from tests.conftest import build_fs


class TestMapping:
    def test_passthrough_then_fault(self):
        dev = PMDevice(4096)
        m = Mapping(dev, ino=7, tag="app")
        m.store(0, b"abc")
        assert m.load(0, 3) == b"abc"
        m.unmap()
        assert not m.valid
        for access in (lambda: m.load(0, 1), lambda: m.store(0, b"x"),
                       lambda: m.clwb(0, 1), lambda: m.sfence(),
                       lambda: m.persist(0, 1), lambda: m.ntstore(0, b"x"),
                       lambda: m.atomic_store(0, b"x")):
            with pytest.raises(SimulatedBusError):
                access()


class TestPermissions:
    def test_owner_bits(self):
        assert may_write(0o600, uid=5, accessor_uid=5)
        assert not may_write(0o600, uid=5, accessor_uid=6)
        assert not may_read(0o600, uid=5, accessor_uid=6)

    def test_other_bits(self):
        assert may_read(0o604, uid=5, accessor_uid=6)
        assert not may_write(0o604, uid=5, accessor_uid=6)

    def test_root_bypasses(self):
        assert may_write(0o000, uid=5, accessor_uid=0)

    def test_check_access_raises(self):
        with pytest.raises(PermissionDenied):
            check_access(0o644, uid=5, accessor_uid=6, want=WRITE)
        check_access(0o644, uid=5, accessor_uid=6, want=READ)


class TestControllerSyscalls:
    def test_register_twice_rejected(self):
        _dev, kernel, _fs = build_fs()
        with pytest.raises(InvalidArgument):
            kernel.register_app("app1", uid=1)  # fixture registered app1

    def test_acquire_unknown_inode(self):
        _dev, kernel, _fs = build_fs()
        with pytest.raises(NoEntry):
            kernel.acquire("app1", 77)

    def test_unregistered_app_rejected(self):
        _dev, kernel, _fs = build_fs()
        with pytest.raises(InvalidArgument):
            kernel.acquire("ghost", 0)

    def test_inode_slots_exhaust(self):
        device = PMDevice(8 * 1024 * 1024)
        kernel = KernelController.fresh(device, inode_count=8)
        kernel.register_app("a", uid=0)
        for _ in range(7):  # slot 0 is the root
            kernel.alloc_inode("a")
        with pytest.raises(NoSpace):
            kernel.alloc_inode("a")

    def test_abort_inode_returns_slot(self):
        _dev, kernel, _fs = build_fs()
        before = len(kernel.free_inodes)
        ino, _gen = kernel.alloc_inode("app1")
        kernel.acquire("app1", ino)
        kernel.abort_inode("app1", ino)
        assert len(kernel.free_inodes) == before
        assert ino not in kernel.acquisitions

    def test_release_unowned_rejected(self):
        _dev, kernel, _fs = build_fs()
        with pytest.raises(InvalidArgument):
            kernel.release("app1", 0)

    def test_generation_bumps_per_allocation(self):
        _dev, kernel, _fs = build_fs()
        ino, gen1 = kernel.alloc_inode("app1")
        kernel.abort_inode("app1", ino)
        ino2, gen2 = kernel.alloc_inode("app1")
        assert ino2 == ino and gen2 == gen1 + 1

    def test_read_to_write_upgrade_checks_permission(self):
        _dev, kernel, fs = build_fs()
        fs.close(fs.creat("/f", mode=0o444))
        fs.commit_path("/")
        ino = fs.stat("/f").ino
        fs.release_all()
        kernel.register_app("reader", uid=4242)
        kernel.acquire("reader", ino, write=False)
        with pytest.raises(PermissionDenied):
            kernel.acquire("reader", ino, write=True)

    def test_rename_lease_expiry_is_stealable(self):
        _dev, kernel, _fs = build_fs()
        kernel.rename_lease.duration = 0.01
        kernel.register_app("app2", uid=0)
        kernel.rename_lock_acquire("app1")
        import time

        time.sleep(0.05)
        kernel.rename_lock_acquire("app2", timeout=0.5)  # stolen after expiry
        assert kernel.rename_lock_held("app2")
        assert not kernel.rename_lock_held("app1")


class TestVerifierRejections:
    def make(self):
        return build_fs(ARCKFS_PLUS)

    def _registered_file(self, fs):
        fd = fs.creat("/f")
        fs.pwrite(fd, b"x" * 100, 0)
        fs.close(fd)
        fs.commit_path("/")
        fs.commit_path("/f")
        return fs.stat("/f").ino

    def test_generation_change_rejected(self):
        _dev, kernel, fs = self.make()
        ino = self._registered_file(fs)
        mi = fs._attach(ino, write=True)
        rec = fs._cs(mi).read_inode(ino)
        rec.gen += 5
        fs._cs(mi).write_inode(ino, rec)
        with pytest.raises(CorruptionDetected, match="generation"):
            kernel.release("app1", ino)

    def test_type_change_rejected(self):
        _dev, kernel, fs = self.make()
        ino = self._registered_file(fs)
        mi = fs._attach(ino, write=True)
        rec = fs._cs(mi).read_inode(ino)
        rec.itype = 2  # file -> dir
        fs._cs(mi).write_inode(ino, rec)
        with pytest.raises(CorruptionDetected, match="type"):
            kernel.release("app1", ino)

    def test_permission_change_rejected(self):
        _dev, kernel, fs = self.make()
        ino = self._registered_file(fs)
        mi = fs._attach(ino, write=True)
        rec = fs._cs(mi).read_inode(ino)
        rec.mode = 0o777
        fs._cs(mi).write_inode(ino, rec)
        with pytest.raises(CorruptionDetected, match="permission"):
            kernel.release("app1", ino)

    def test_size_beyond_pages_rejected(self):
        _dev, kernel, fs = self.make()
        ino = self._registered_file(fs)
        mi = fs._attach(ino, write=True)
        fs._cs(mi).set_file_size(ino, 1 << 40)
        with pytest.raises(CorruptionDetected, match="size"):
            kernel.release("app1", ino)

    def test_foreign_page_claim_rejected(self):
        """An inode claiming a page owned by another inode fails (I2)."""
        import struct

        _dev, kernel, fs = self.make()
        ino = self._registered_file(fs)
        fd2 = fs.creat("/other")
        fs.pwrite(fd2, b"y" * 5000, 0)
        fs.close(fd2)
        fs.commit_path("/")
        fs.commit_path("/other")
        other_pages = kernel.core.file_pages(kernel.core.read_inode(fs.stat("/other").ino))
        # Point /f's first index slot at /other's page.
        mi = fs._attach(ino, write=True)
        rec = fs._cs(mi).read_inode(ino)
        idx_page = kernel.core.index_pages(rec)[0]
        addr = kernel.geom.page_off(idx_page) + 16
        mi.mapping.store(addr, struct.pack("<Q", other_pages[0]))
        mi.mapping.persist(addr, 8)
        with pytest.raises(CorruptionDetected, match="owned by"):
            kernel.release("app1", ino)

    def test_dentry_to_unknown_inode_rejected(self):
        _dev, kernel, fs = self.make()
        fs.mkdir("/d")
        fs.commit_path("/")
        mi = fs._attach(fs.stat("/d").ino, write=True)

        cursor = mi.cursors[0]
        fs._cs(mi).append_dentry(
            mi.ino, mi.record, 0, cursor, b"phantom", 99, 1, 1, 1, fs.alloc,
            fence_before_marker=True)
        with pytest.raises(CorruptionDetected, match="unknown inode"):
            kernel.release("app1", mi.ino)


class TestMarkInaccessiblePolicy:
    def test_corrupt_inode_is_fenced_off(self):
        device = PMDevice(16 * 1024 * 1024)
        kernel = KernelController.fresh(
            device, inode_count=128, config=ARCKFS_PLUS,
            policy=MarkInaccessiblePolicy())
        from repro.libfs.libfs import LibFS

        fs = LibFS(kernel, "app1", uid=0, config=ARCKFS_PLUS)
        fd = fs.creat("/f")
        fs.close(fd)
        fs.commit_path("/")
        fs.commit_path("/f")
        ino = fs.stat("/f").ino
        mi = fs._attach(ino, write=True)
        fs._cs(mi).set_file_size(ino, 1 << 40)
        with pytest.raises(CorruptionDetected):
            kernel.release("app1", ino)
        assert kernel.stats.marked_inaccessible == 1
        kernel.register_app("app2", uid=0)
        with pytest.raises(PermissionDenied, match="inaccessible"):
            kernel.acquire("app2", ino)
