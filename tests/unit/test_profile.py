"""Unit tests for the call-path profiler (repro.obs.profile)."""

import threading

import pytest

from repro import obs
from repro.obs.profile import (
    PipelineProfile,
    Profiler,
    read_collapsed,
)
from repro.obs.trace import NULL_SPAN


# --------------------------------------------------------------------------- #
# Frames and paths
# --------------------------------------------------------------------------- #


def test_disabled_profiler_is_a_noop():
    p = Profiler()
    assert p.frame("x") is NULL_SPAN
    p.charge(100.0, "y")
    p.charge_path(("a", "b"), 50.0)
    assert p.paths() == {}
    assert p.collapsed() == ""


def test_frames_nest_into_paths_and_self_time():
    p = Profiler()
    p.enabled = True
    with p.frame("outer"):
        with p.frame("inner"):
            pass
    paths = p.paths()
    assert set(paths) == {("outer",), ("outer", "inner")}
    assert paths[("outer", "inner")]["calls"] == 1
    assert paths[("outer",)]["calls"] == 1
    # Self time: the child's wall time is subtracted from the parent's.
    total = p.total("wall")
    assert total == (paths[("outer",)]["wall_ns"]
                     + paths[("outer", "inner")]["wall_ns"])


def test_frame_event_is_accepted_for_span_compat():
    p = Profiler()
    p.enabled = True
    with p.frame("op") as fr:
        fr.event("marker", detail=1)  # must not raise
    assert ("op",) in p.paths()


def test_charge_rides_the_current_frame_stack():
    p = Profiler()
    p.enabled = True
    with p.frame("creat"):
        p.charge(500.0)
        p.charge(100.0, "alloc.refill")
    paths = p.paths()
    assert paths[("creat",)]["sim_ns"] == pytest.approx(500.0)
    assert paths[("creat", "alloc.refill")]["sim_ns"] == pytest.approx(100.0)


def test_charge_outside_any_frame_goes_to_root():
    p = Profiler()
    p.enabled = True
    p.charge(42.0)
    p.charge(8.0, "suffix")
    paths = p.paths()
    assert paths[("(root)",)]["sim_ns"] == pytest.approx(42.0)
    assert paths[("(root)", "suffix")]["sim_ns"] == pytest.approx(8.0)


def test_charge_path_records_calls():
    p = Profiler()
    p.enabled = True
    p.charge_path(("des", "run", "thread0"), 1234.5, calls=7)
    st = p.paths()[("des", "run", "thread0")]
    assert st["sim_ns"] == pytest.approx(1234.5)
    assert st["calls"] == 7


def test_threads_have_independent_stacks():
    p = Profiler()
    p.enabled = True
    inside = threading.Event()
    release = threading.Event()

    def work():
        with p.frame("worker"):
            inside.set()
            release.wait(2.0)

    th = threading.Thread(target=work)
    th.start()
    assert inside.wait(2.0)
    with p.frame("main"):
        p.charge(10.0)
    release.set()
    th.join()
    paths = p.paths()
    # The main frame never nested under the worker's open frame.
    assert ("main",) in paths and ("worker",) in paths
    assert ("worker", "main") not in paths


# --------------------------------------------------------------------------- #
# Collapsed-stack export
# --------------------------------------------------------------------------- #


def test_collapsed_round_trip(tmp_path):
    p = Profiler()
    p.enabled = True
    p.charge_path(("a", "b"), 1000.0)
    p.charge_path(("a", "c"), 250.0)
    p.charge_path(("a",), 10.4)  # rounds to 10
    out = tmp_path / "p.collapsed"
    p.write_collapsed(str(out), weight="sim")
    back = read_collapsed(str(out))
    assert back == {("a", "b"): 1000, ("a", "c"): 250, ("a",): 10}


def test_collapsed_sanitizes_separator_characters(tmp_path):
    p = Profiler()
    p.enabled = True
    p.charge_path(("semi;colon", "with space"), 99.0)
    out = tmp_path / "p.collapsed"
    p.write_collapsed(str(out), weight="sim")
    back = read_collapsed(str(out))
    assert back == {("semi:colon", "with_space"): 99}


def test_collapsed_skips_zero_weight_paths():
    p = Profiler()
    p.enabled = True
    p.charge_path(("zero",), 0.0)
    p.charge_path(("hot",), 5.0)
    assert p.collapsed(weight="sim") == "hot 5"


def test_collapsed_rejects_unknown_weight():
    with pytest.raises(ValueError):
        Profiler().collapsed(weight="cpu")


def test_read_collapsed_merges_duplicate_lines(tmp_path):
    f = tmp_path / "dup.collapsed"
    f.write_text("a;b 10\na;b 5\n\n")
    assert read_collapsed(str(f)) == {("a", "b"): 15}


def test_report_ranks_paths():
    p = Profiler()
    p.enabled = True
    p.charge_path(("cold",), 10.0)
    p.charge_path(("hot",), 1000.0)
    rep = p.report(top=1, weight="sim")
    assert "hot" in rep and "cold" not in rep


# --------------------------------------------------------------------------- #
# Pipeline profiles / critical path
# --------------------------------------------------------------------------- #


def test_pipeline_critical_path_picks_slowest_worker():
    pp = PipelineProfile("verify.w2")
    pp.charge(0, "check_pages", 100.0)
    pp.charge(1, "check_pages", 300.0)
    pp.charge(1, "check_dentries", 50.0)
    pp.charge_serial("commit", 40.0)
    cp = pp.critical_path()
    assert cp["worker"] == "1"
    assert cp["workers"] == 2
    assert cp["total_ns"] == pytest.approx(350.0)
    assert cp["stages"] == {"check_pages": 300.0, "check_dentries": 50.0}
    assert cp["serial_stages"] == {"commit": 40.0}
    assert cp["serial_ns"] == pytest.approx(40.0)
    assert cp["attributed_fraction"] == pytest.approx(1.0)


def test_pipeline_attribution_against_worker_totals():
    pp = PipelineProfile("p")
    pp.charge("w", "stage", 90.0)
    pp.add_worker_total("w", 100.0)  # 10 ns of unexplained overhead
    assert pp.worker_total("w") == pytest.approx(100.0)
    cp = pp.critical_path()
    assert cp["total_ns"] == pytest.approx(100.0)
    assert cp["attributed_fraction"] == pytest.approx(0.9)


def test_pipeline_empty_critical_path():
    cp = PipelineProfile("empty").critical_path()
    assert cp["worker"] is None
    assert cp["total_ns"] == 0.0
    assert cp["attributed_fraction"] == 1.0
    assert "no charges recorded" in PipelineProfile("empty").report()


def test_pipeline_report_mentions_stages():
    pp = PipelineProfile("fsck.w4")
    pp.charge(2, "scan", 5000.0)
    pp.charge_serial("graph", 100.0)
    rep = pp.report()
    assert "fsck.w4" in rep and "scan" in rep and "graph" in rep


def test_pipeline_serial_only_report_shows_serial_stages():
    pp = PipelineProfile("serial-only")
    pp.charge_serial("commit", 300.0)
    rep = pp.report()
    assert "commit" in rep and "no charges recorded" not in rep


def test_profiler_pipeline_get_or_create():
    p = Profiler()
    p.enabled = True
    a = p.pipeline("alloc")
    assert p.pipeline("alloc") is a
    assert set(p.pipelines()) == {"alloc"}
    p.reset()
    assert p.pipelines() == {}


# --------------------------------------------------------------------------- #
# Facade integration (obs.span / obs.charge / SpanFrame)
# --------------------------------------------------------------------------- #


def test_obs_span_is_frame_when_profiling_only():
    obs.enable(trace=False, profile=True)
    with obs.span("op"):
        obs.charge(77.0)
    obs.disable()
    assert obs.profiler.paths()[("op",)]["sim_ns"] == pytest.approx(77.0)
    assert obs.tracer.events() == []


def test_obs_span_drives_tracer_and_profiler_in_lockstep():
    obs.enable(trace=True, profile=True)
    with obs.span("op", category="syscall") as sp:
        sp.event("marker")
    obs.disable()
    assert ("op",) in obs.profiler.paths()
    names = [e["name"] for e in obs.tracer.events()]
    assert "op" in names and "marker" in names


def test_obs_pipeline_profile_none_when_disabled():
    assert obs.pipeline_profile("verify.w8") is None
    obs.enable(profile=True)
    assert obs.pipeline_profile("verify.w8") is not None
    obs.disable()


def test_verify_pipeline_stages_sum_to_pipeline_time():
    from repro.perf.costmodel import COST

    for pages, dentries, workers in ((65, 0, 8), (16, 12, 4), (1, 1, 1)):
        stages = COST.verify_pipeline_stages(pages, dentries=dentries,
                                             workers=workers)
        assert set(stages) == {"enumerate", "check_pages", "check_dentries",
                               "commit"}
        assert sum(stages.values()) == pytest.approx(
            COST.verify_pipeline_time(pages, dentries=dentries,
                                      workers=workers))
