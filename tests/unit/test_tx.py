"""Transaction handle semantics: buffering, validation, commit, abort.

The crash-atomicity half of the contract lives in
``tests/integration/test_tx_crash.py``; this module covers the in-process
API surface — the staged-namespace validation a :class:`~repro.tx.Tx`
runs at op time, the handle's state machine, the ``VolumeConfig``
unification on the facade, and the server dispatch adapters.
"""

import pytest

from repro import errors as E
from repro.api import Volume, VolumeConfig
from repro.core.config import ARCKFS_PLUS
from repro.server import dispatch
from repro.server.protocol import error_body, pack_bytes


def make_volume(**kw):
    kw.setdefault("inode_count", 128)
    return Volume.create(16 * 1024 * 1024, **kw)


class TestStagedValidation:
    """Conflicts surface at op time, against tx-local effects layered
    over the live namespace — and nothing touches PM before commit."""

    def test_create_conflicts_with_live_and_staged(self):
        with make_volume() as vol, vol.session("app") as s:
            s.write_file("/live", b"x")
            tx = s.transaction()
            with pytest.raises(E.Exists):
                tx.create("/live")
            tx.create("/staged")
            with pytest.raises(E.Exists):
                tx.create("/staged")
            tx.abort()

    def test_pwrite_requires_file_parent_requires_dir(self):
        with make_volume() as vol, vol.session("app") as s:
            tx = s.transaction()
            with pytest.raises(E.NoEntry):
                tx.pwrite("/missing", b"x", 0)
            with pytest.raises(E.NoEntry):
                tx.create("/nodir/f")
            tx.mkdir("/d")
            with pytest.raises(E.IsADir):
                tx.pwrite("/d", b"x", 0)
            tx.create("/f")
            with pytest.raises(E.NotADir):
                tx.create("/f/child")
            tx.abort()

    def test_unlink_and_rename_validation(self):
        with make_volume() as vol, vol.session("app") as s:
            s.write_file("/a", b"a")
            s.write_file("/b", b"b")
            tx = s.transaction()
            with pytest.raises(E.NoEntry):
                tx.unlink("/missing")
            with pytest.raises(E.Exists):
                tx.rename("/a", "/b")
            tx.unlink("/b")
            tx.rename("/a", "/b")  # destination freed by the staged unlink
            with pytest.raises(E.NoEntry):
                tx.pwrite("/a", b"x", 0)  # source gone in the staged view
            tx.abort()

    def test_dir_rename_rehomes_staged_and_live_children(self):
        with make_volume() as vol, vol.session("app") as s:
            s.mkdir("/d")
            s.write_file("/d/live", b"live")
            tx = s.transaction()
            tx.create("/d/staged")
            tx.rename("/d", "/e")
            tx.pwrite("/e/staged", b"s", 0)   # staged child, rehomed
            tx.pwrite("/e/live", b"L", 0)     # live child through the move
            with pytest.raises(E.NoEntry):
                tx.pwrite("/d/live", b"x", 0)  # old name gone in staged view
            tx.commit()
            assert s.read_file("/e/staged") == b"s"
            assert s.read_file("/e/live") == b"Live"

    def test_rename_dir_under_itself_rejected(self):
        with make_volume() as vol, vol.session("app") as s:
            s.mkdir("/d")
            tx = s.transaction()
            with pytest.raises(E.InvalidArgument):
                tx.rename("/d", "/d/sub")
            tx.abort()

    def test_nothing_reaches_pm_before_commit(self):
        with make_volume() as vol, vol.session("app") as s:
            tx = s.transaction()
            tx.mkdir("/d")
            tx.create("/d/f")
            tx.pwrite("/d/f", b"payload", 0)
            assert not s.exists("/d")
            tx.abort()
            assert not s.exists("/d")
        assert vol.fsck().clean


class TestHandleLifecycle:
    def test_commit_applies_all_ops(self):
        with make_volume() as vol, vol.session("app") as s:
            s.write_file("/old", b"moved")
            tx = s.transaction()
            tx.mkdir("/batch")
            tx.create("/batch/a")
            tx.pwrite("/batch/a", b"hello", 0)
            tx.rename("/old", "/batch/b")
            tx.truncate("/batch/a", 4)
            stats = tx.commit()
            assert stats["ops"] == 5 and stats["log_pages"] >= 1
            assert s.read_file("/batch/a") == b"hell"
            assert s.read_file("/batch/b") == b"moved"
            assert not s.exists("/old")
        assert vol.fsck().clean

    def test_empty_commit_is_a_noop(self):
        with make_volume() as vol, vol.session("app") as s:
            assert s.transaction().commit() == {
                "ops": 0, "log_pages": 0, "log_bytes": 0}

    def test_handle_is_single_shot(self):
        with make_volume() as vol, vol.session("app") as s:
            tx = s.transaction()
            tx.create("/f")
            tx.commit()
            for call in (lambda: tx.create("/g"), tx.commit, tx.abort):
                with pytest.raises(E.TxError):
                    call()
            tx2 = s.transaction()
            tx2.abort()
            with pytest.raises(E.TxError):
                tx2.commit()

    def test_context_manager_commits_on_clean_exit(self):
        with make_volume() as vol, vol.session("app") as s:
            with s.transaction() as tx:
                tx.create("/f")
                tx.pwrite("/f", b"data", 0)
            assert tx.state == "committed"
            assert s.read_file("/f") == b"data"

    def test_context_manager_aborts_on_exception(self):
        with make_volume() as vol, vol.session("app") as s:
            with pytest.raises(RuntimeError):
                with s.transaction() as tx:
                    tx.create("/f")
                    raise RuntimeError("caller bug")
            assert tx.state == "aborted"
            assert not s.exists("/f")
        assert vol.fsck().clean

    def test_write_file_composes(self):
        with make_volume() as vol, vol.session("app") as s:
            s.write_file("/f", b"longer original")
            with s.transaction() as tx:
                tx.write_file("/f", b"new")      # existing: truncate+pwrite
                tx.write_file("/g", b"fresh")    # missing: create+pwrite
            assert s.read_file("/f") == b"new"
            assert s.read_file("/g") == b"fresh"


class TestExitCodes:
    @pytest.mark.parametrize("exc", [
        E.TxError("x"), E.TxAborted("x"), E.TxCommitPending("x"),
    ])
    def test_tx_family_exits_9(self, exc):
        assert E.exit_code_for(exc) == E.EXIT_TX == 9

    def test_codes_and_retryability_are_stable(self):
        assert E.TxError("x").code == 220
        assert E.TxAborted("x").code == 221
        assert E.TxCommitPending("x").code == 222
        assert not E.TxError("x").retryable
        assert E.TxAborted("x").retryable
        assert not E.TxCommitPending("x").retryable


class TestVolumeConfig:
    def test_legacy_kwargs_and_volumeconfig_are_equivalent(self):
        legacy = Volume.create(8 * 1024 * 1024, inode_count=64,
                               crash_tracking=True, verify_workers=2,
                               name="lv")
        unified = Volume.create(8 * 1024 * 1024, config=VolumeConfig(
            inode_count=64, crash_tracking=True, verify_workers=2,
            name="uv"))
        assert legacy.kernel.geom.inode_count == \
            unified.kernel.geom.inode_count == 64
        assert legacy.device.crash_tracking and unified.device.crash_tracking
        assert legacy.config == unified.config
        assert (legacy.name, unified.name) == ("lv", "uv")

    def test_legacy_kwargs_override_volumeconfig_fields(self):
        vc = VolumeConfig(inode_count=64, name="from-vc")
        vol = Volume.create(8 * 1024 * 1024, config=vc, inode_count=32,
                            name="shim-wins")
        assert vol.kernel.geom.inode_count == 32
        assert vol.name == "shim-wins"

    def test_bare_arckconfig_still_accepted(self):
        vol = Volume.create(8 * 1024 * 1024, config=ARCKFS_PLUS)
        assert vol.config.name == ARCKFS_PLUS.name

    def test_mount_accepts_volumeconfig(self):
        src = Volume.create(8 * 1024 * 1024)
        with src.session("w") as s:
            s.write_file("/f", b"x")
        vol = Volume.mount(src.device.durable_image(),
                           config=VolumeConfig(name="mounted"))
        assert vol.name == "mounted"
        with vol.session("r") as s:
            assert s.read_file("/f") == b"x"

    def test_coerce_and_override(self):
        assert VolumeConfig.coerce(None) == VolumeConfig()
        vc = VolumeConfig(inode_count=99)
        assert VolumeConfig.coerce(vc) is vc
        assert VolumeConfig.coerce(ARCKFS_PLUS).config is ARCKFS_PLUS
        assert vc.override() is vc
        assert vc.override(inode_count=None) is vc
        assert vc.override(inode_count=7).inode_count == 7


class TestDispatch:
    """The server's tx_* adapters, driven directly against a Session."""

    def test_begin_op_commit_roundtrip(self):
        with make_volume() as vol, vol.session("tenant") as s:
            out = dispatch.op_tx_begin(s, {})
            assert out["txid"] >= 1
            dispatch.op_tx_op(s, {"op": "mkdir", "path": "/d"})
            dispatch.op_tx_op(s, {"op": "create", "path": "/d/f"})
            n = dispatch.op_tx_op(s, {
                "op": "pwrite", "path": "/d/f",
                "data": pack_bytes(b"wire"), "offset": 0})
            assert n["ops"] == 3
            stats = dispatch.op_tx_commit(s, {})
            assert stats["ops"] == 3
            assert s.read_file("/d/f") == b"wire"

    def test_abort_discards(self):
        with make_volume() as vol, vol.session("tenant") as s:
            dispatch.op_tx_begin(s, {})
            dispatch.op_tx_op(s, {"op": "create", "path": "/f"})
            dispatch.op_tx_abort(s, {})
            assert not s.exists("/f")

    def test_misuse_raises_typed_tx_errors(self):
        with make_volume() as vol, vol.session("tenant") as s:
            with pytest.raises(E.TxError):
                dispatch.op_tx_op(s, {"op": "create", "path": "/f"})
            with pytest.raises(E.TxError):
                dispatch.op_tx_commit(s, {})
            dispatch.op_tx_begin(s, {})
            with pytest.raises(E.TxError):
                dispatch.op_tx_begin(s, {})
            with pytest.raises(E.InvalidArgument):
                dispatch.op_tx_op(s, {"op": "chmod", "path": "/f"})
            dispatch.op_tx_abort(s, {})
            # the handle is gone after abort; commit is a typed error again
            with pytest.raises(E.TxError):
                dispatch.op_tx_commit(s, {})

    def test_error_bodies_carry_code_and_retryable(self):
        body = error_body(E.TxAborted("rolled back"))
        assert body["type"] == "TxAborted"
        assert body["code"] == 221 and body["retryable"] is True
        body = error_body(E.TxCommitPending("remount"))
        assert body["code"] == 222 and body["retryable"] is False

    def test_ops_registered_in_dispatch_table(self):
        for method in ("tx_begin", "tx_op", "tx_commit", "tx_abort"):
            assert method in dispatch.SESSION_OPS
