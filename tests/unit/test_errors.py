"""The unified error taxonomy and the CLI's exit-code mapping."""

import errno

import pytest

from repro import errors as E
from repro.cli import main


class TestTaxonomy:
    def test_everything_catchable_is_a_repro_error(self):
        for exc in (E.NoEntry(), E.NoSpace(), E.InvalidArgument("x"),
                    E.VerifyFailure(3, "bad"), E.CorruptionDetected(3, "bad"),
                    E.LeaseExpired("gone")):
            assert isinstance(exc, E.ReproError)

    def test_fs_errors_remain_oserrors(self):
        exc = E.NoEntry("missing")
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENOENT
        assert exc.code == errno.ENOENT

    def test_protection_domain_codes_are_stable(self):
        assert E.VerifyFailure(1, "r").code == 200
        assert E.CorruptionDetected(1, "r").code == 201
        assert E.LeaseExpired().code == 202

    def test_server_family_codes_and_retryability(self):
        assert E.ServerError("x").code == 210
        assert E.Overloaded("x").code == 211
        assert E.TenantLimit("x").code == 212
        assert E.ProtocolError("x").code == 213
        assert E.SessionGone("x").code == 214
        # retryable is the wire contract: back-off-and-retry errors only.
        assert not E.ServerError("x").retryable
        assert E.Overloaded("x").retryable
        assert E.TenantLimit("x").retryable
        assert not E.ProtocolError("x").retryable
        assert E.SessionGone("x").retryable
        assert E.TryAgain("x").retryable

    def test_canonical_reexports(self):
        from repro.concurrency.lease import LeaseExpired as L2
        from repro.kernel.verifier import VerifyFailure as V2

        assert V2 is E.VerifyFailure
        assert L2 is E.LeaseExpired


class TestExitCodes:
    @pytest.mark.parametrize("exc,want", [
        (E.InvalidArgument("x"), E.EXIT_USAGE),
        (E.NoSpace(), E.EXIT_NO_SPACE),
        (E.NoEntry(), E.EXIT_FS_ERROR),
        (E.Exists(), E.EXIT_FS_ERROR),
        (E.VerifyFailure(1, "r"), E.EXIT_CORRUPTION),
        (E.CorruptionDetected(1, "r"), E.EXIT_CORRUPTION),
        (E.LeaseExpired(), E.EXIT_LEASE),
        (E.ReproError("other"), E.EXIT_OTHER),
        (E.ServerError("s"), E.EXIT_SERVER),
        (E.Overloaded("q full"), E.EXIT_SERVER),
        (E.TenantLimit("cap"), E.EXIT_SERVER),
        (E.ProtocolError("bad frame"), E.EXIT_SERVER),
        (E.SessionGone("tok"), E.EXIT_SERVER),
        (E.TxError("misuse"), E.EXIT_TX),
        (E.TxAborted("rolled back"), E.EXIT_TX),
        (E.TxCommitPending("remount"), E.EXIT_TX),
    ])
    def test_mapping(self, exc, want):
        assert E.exit_code_for(exc) == want

    def test_unknown_repro_error_subclass_gets_documented_fallback(self):
        # The regression this guards: a new ReproError family added without
        # an _EXIT_TABLE row must exit EXIT_OTHER (7), never an unmapped
        # (or accidental) status.
        class FutureFamily(E.ReproError):
            CODE = 299

        assert E.exit_code_for(FutureFamily("novel")) == E.EXIT_OTHER
        assert E.exit_code_for(RuntimeError("not ours")) == E.EXIT_OTHER

    def test_exit_table_precedence_is_most_specific_first(self):
        # InvalidArgument and NoSpace are FSErrors but must win their own
        # rows; TryAgain has no row and falls through to the family's.
        assert E.exit_code_for(E.InvalidArgument("x")) != E.EXIT_FS_ERROR
        assert E.exit_code_for(E.TryAgain("busy")) == E.EXIT_FS_ERROR

    @pytest.mark.parametrize("exc,want", [
        (E.NoSpace("volume full"), E.EXIT_NO_SPACE),
        (E.CorruptionDetected(7, "uid changed"), E.EXIT_CORRUPTION),
        (E.LeaseExpired("lapsed"), E.EXIT_LEASE),
        (E.NoEntry("gone"), E.EXIT_FS_ERROR),
    ])
    def test_cli_maps_repro_errors(self, monkeypatch, capsys, exc, want):
        import repro.cli as cli

        def boom(args):
            raise exc

        monkeypatch.setitem(cli.TABLE_COMMANDS, "table4",
                            (boom, "boom stand-in"))
        assert main(["table4"]) == want
        assert "error:" in capsys.readouterr().err


class TestSpanCapture:
    def test_errors_capture_active_span_path_and_trace_id(self):
        from repro import obs

        obs.enable(trace=True)
        with obs.span("creat"):
            with obs.span("alloc.page"):
                err = E.NoSpace("pool dry")
        obs.disable()
        assert err.span_path == "creat;alloc.page"
        assert err.trace_id == obs.trace_id() or err.trace_id is not None

    def test_errors_outside_obs_have_no_span(self):
        err = E.InvalidArgument("plain")
        assert err.span_path is None
        assert err.trace_id is None

    def test_cli_json_error_doc_reports_span(self, monkeypatch, capsys):
        import json

        import repro.cli as cli
        from repro import obs

        def boom(args):
            obs.enable(trace=True)
            try:
                with obs.span("doomed.op"):
                    raise E.CorruptionDetected(3, "uid changed")
            finally:
                obs.disable()

        monkeypatch.setitem(cli.TABLE_COMMANDS, "table4",
                            (boom, "boom stand-in"))
        assert main(["table4", "--json"]) == E.EXIT_CORRUPTION
        doc = json.loads(capsys.readouterr().out)
        assert doc["type"] == "CorruptionDetected"
        assert doc["exit"] == E.EXIT_CORRUPTION
        assert doc["span_path"] == "doomed.op"
        assert "trace_id" in doc

    def test_cli_text_error_mentions_span(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro import obs

        def boom(args):
            obs.enable(trace=True)
            try:
                with obs.span("doomed.op"):
                    raise E.LeaseExpired("lapsed")
            finally:
                obs.disable()

        monkeypatch.setitem(cli.TABLE_COMMANDS, "table4",
                            (boom, "boom stand-in"))
        assert main(["table4"]) == E.EXIT_LEASE
        err = capsys.readouterr().err
        assert "error: lapsed" in err
        assert "(at doomed.op)" in err
