"""The unified error taxonomy and the CLI's exit-code mapping."""

import errno

import pytest

from repro import errors as E
from repro.cli import main


class TestTaxonomy:
    def test_everything_catchable_is_a_repro_error(self):
        for exc in (E.NoEntry(), E.NoSpace(), E.InvalidArgument("x"),
                    E.VerifyFailure(3, "bad"), E.CorruptionDetected(3, "bad"),
                    E.LeaseExpired("gone")):
            assert isinstance(exc, E.ReproError)

    def test_fs_errors_remain_oserrors(self):
        exc = E.NoEntry("missing")
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENOENT
        assert exc.code == errno.ENOENT

    def test_protection_domain_codes_are_stable(self):
        assert E.VerifyFailure(1, "r").code == 200
        assert E.CorruptionDetected(1, "r").code == 201
        assert E.LeaseExpired().code == 202

    def test_canonical_reexports(self):
        from repro.concurrency.lease import LeaseExpired as L2
        from repro.kernel.verifier import VerifyFailure as V2

        assert V2 is E.VerifyFailure
        assert L2 is E.LeaseExpired


class TestExitCodes:
    @pytest.mark.parametrize("exc,want", [
        (E.InvalidArgument("x"), E.EXIT_USAGE),
        (E.NoSpace(), E.EXIT_NO_SPACE),
        (E.NoEntry(), E.EXIT_FS_ERROR),
        (E.Exists(), E.EXIT_FS_ERROR),
        (E.VerifyFailure(1, "r"), E.EXIT_CORRUPTION),
        (E.CorruptionDetected(1, "r"), E.EXIT_CORRUPTION),
        (E.LeaseExpired(), E.EXIT_LEASE),
        (E.ReproError("other"), E.EXIT_OTHER),
    ])
    def test_mapping(self, exc, want):
        assert E.exit_code_for(exc) == want

    @pytest.mark.parametrize("exc,want", [
        (E.NoSpace("volume full"), E.EXIT_NO_SPACE),
        (E.CorruptionDetected(7, "uid changed"), E.EXIT_CORRUPTION),
        (E.LeaseExpired("lapsed"), E.EXIT_LEASE),
        (E.NoEntry("gone"), E.EXIT_FS_ERROR),
    ])
    def test_cli_maps_repro_errors(self, monkeypatch, capsys, exc, want):
        import repro.cli as cli

        def boom(args):
            raise exc

        monkeypatch.setitem(cli.TABLE_COMMANDS, "table4",
                            (boom, "boom stand-in"))
        assert main(["table4"]) == want
        assert "error:" in capsys.readouterr().err
