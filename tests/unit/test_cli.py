"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "4KB-write 1GB" in out
    assert "arckfs+-trust-group" in out


def test_fig3(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "arckfs+" in out and "strata" in out and "create" in out


def test_filebench(capsys):
    assert main(["filebench"]) == 0
    out = capsys.readouterr().out
    assert "webproxy-shared" in out and "ratio=" in out


def test_fig4_custom_threads(capsys):
    assert main(["fig4", "--threads", "1,4"]) == 0
    out = capsys.readouterr().out
    assert "MWUM" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig9000"])
