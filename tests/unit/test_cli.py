"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "4KB-write 1GB" in out
    assert "arckfs+-trust-group" in out


def test_fig3(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "arckfs+" in out and "strata" in out and "create" in out


def test_filebench(capsys):
    assert main(["filebench"]) == 0
    out = capsys.readouterr().out
    assert "webproxy-shared" in out and "ratio=" in out


def test_fig4_custom_threads(capsys):
    assert main(["fig4", "--threads", "1,4"]) == 0
    out = capsys.readouterr().out
    assert "MWUM" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig9000"])


def test_table4_json(capsys):
    import json

    assert main(["table4", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert isinstance(data, list)
    assert {"scenario", "system", "value", "unit"} <= set(data[0])


def test_table2_json(capsys):
    import json

    assert main(["table2", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["paper_geomean_pct"] == 97.23
    assert all("ratio_pct" in r for r in data["rows"])


def test_trace_requires_workload():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_metrics_unknown_workload_rejected(capsys):
    assert main(["metrics", "fxmark:NOSUCH"]) == 2
    err = capsys.readouterr().err
    assert "unknown fxmark workload" in err and "MWCL" in err


def test_profile_writes_round_trippable_collapsed(tmp_path, capsys):
    from repro.obs.profile import read_collapsed

    out = tmp_path / "p.collapsed"
    assert main(["profile", "filebench:varmail", "--ops", "4",
                 "--out", str(out)]) == 0
    stacks = read_collapsed(str(out))
    assert stacks and all(w > 0 for w in stacks.values())
    text = capsys.readouterr().out
    assert "stacks" in text and str(out) in text


def test_metrics_format_prom(capsys):
    assert main(["metrics", "fxmark:MWCL", "--ops", "4",
                 "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_kernel_crossings_total counter" in out
    assert "repro_libfs_syscall_ns_bucket" in out


def test_metrics_json_error_doc_has_span_path(capsys):
    import json

    assert main(["metrics", "fxmark:NOSUCH", "--json"]) == 2
    doc = json.loads(capsys.readouterr().out)
    assert doc["type"] == "InvalidArgument"
    assert doc["exit"] == 2
    assert "span_path" in doc and "trace_id" in doc


def _write_sidecar(path, snapshot):
    import json

    path.write_text(json.dumps({"bench": "unit", "metrics": snapshot}))


_SNAP = {"counters": {"kernel.crossings": 100},
         "gauges": {},
         "histograms": {}}


def test_obs_diff_write_baseline_then_pass(tmp_path, capsys):
    sidecar = tmp_path / "unit.metrics.json"
    _write_sidecar(sidecar, _SNAP)
    base = tmp_path / "unit-base.metrics.json"
    assert main(["obs", "diff", str(sidecar),
                 "--write-baseline", "--baseline", str(base)]) == 0
    assert base.exists()
    capsys.readouterr()
    assert main(["obs", "diff", str(sidecar), "--baseline", str(base)]) == 0
    assert "OK" in capsys.readouterr().out


def test_obs_diff_fails_on_out_of_band_metric(tmp_path, capsys):
    sidecar = tmp_path / "unit.metrics.json"
    _write_sidecar(sidecar, _SNAP)
    base = tmp_path / "unit-base.metrics.json"
    assert main(["obs", "diff", str(sidecar),
                 "--write-baseline", "--baseline", str(base)]) == 0
    bad = {"counters": {"kernel.crossings": 200}, "gauges": {},
           "histograms": {}}
    _write_sidecar(sidecar, bad)
    capsys.readouterr()
    assert main(["obs", "diff", str(sidecar), "--baseline", str(base)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "kernel.crossings" in out


def test_obs_diff_missing_baseline_is_distinct_exit(tmp_path, capsys):
    sidecar = tmp_path / "unit.metrics.json"
    _write_sidecar(sidecar, _SNAP)
    assert main(["obs", "diff", str(sidecar),
                 "--baselines", str(tmp_path / "nowhere")]) == 2
    assert "no baseline" in capsys.readouterr().err


def test_obs_diff_json_report(tmp_path, capsys):
    import json

    sidecar = tmp_path / "unit.metrics.json"
    _write_sidecar(sidecar, _SNAP)
    base = tmp_path / "unit-base.metrics.json"
    assert main(["obs", "diff", str(sidecar),
                 "--write-baseline", "--baseline", str(base)]) == 0
    capsys.readouterr()
    assert main(["obs", "diff", str(sidecar), "--baseline", str(base),
                 "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc[0]["gated"] >= 1 and doc[0]["violations"] == []


def test_obs_diff_unreadable_inputs_report_cleanly(tmp_path, capsys):
    assert main(["obs", "diff", str(tmp_path / "absent.metrics.json")]) == 2
    assert "cannot read sidecar" in capsys.readouterr().err
    sidecar = tmp_path / "unit.metrics.json"
    _write_sidecar(sidecar, _SNAP)
    garbage = tmp_path / "garbage.json"
    garbage.write_text('{"not": "a baseline"}')
    assert main(["obs", "diff", str(sidecar),
                 "--baseline", str(garbage)]) == 2
    assert "cannot read baseline" in capsys.readouterr().err
