"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "4KB-write 1GB" in out
    assert "arckfs+-trust-group" in out


def test_fig3(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "arckfs+" in out and "strata" in out and "create" in out


def test_filebench(capsys):
    assert main(["filebench"]) == 0
    out = capsys.readouterr().out
    assert "webproxy-shared" in out and "ratio=" in out


def test_fig4_custom_threads(capsys):
    assert main(["fig4", "--threads", "1,4"]) == 0
    out = capsys.readouterr().out
    assert "MWUM" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig9000"])


def test_table4_json(capsys):
    import json

    assert main(["table4", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert isinstance(data, list)
    assert {"scenario", "system", "value", "unit"} <= set(data[0])


def test_table2_json(capsys):
    import json

    assert main(["table2", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["paper_geomean_pct"] == 97.23
    assert all("ratio_pct" in r for r in data["rows"])


def test_trace_requires_workload():
    with pytest.raises(SystemExit):
        main(["trace"])


def test_metrics_unknown_workload_rejected(capsys):
    assert main(["metrics", "fxmark:NOSUCH"]) == 2
    err = capsys.readouterr().err
    assert "unknown fxmark workload" in err and "MWCL" in err
