"""Per-tenant admission control (`repro.server.admission`)."""

import pytest

from repro import obs
from repro.errors import Overloaded, TenantLimit
from repro.server.admission import AdmissionController, TenantPolicy


def make(policy=None, default=None, tenants=("acme",)):
    policy = policy or TenantPolicy()
    return AdmissionController({t: policy for t in tenants}, default=default)


class TestTenantLookup:
    def test_unknown_tenant_rejected(self):
        ctl = make()
        with pytest.raises(TenantLimit):
            ctl.tenant("stranger")

    def test_no_tenant_rejected(self):
        with pytest.raises(TenantLimit):
            make().tenant(None)

    def test_default_policy_enrolls_unknown_tenants(self):
        ctl = make(default=TenantPolicy(max_sessions=1))
        t = ctl.tenant("stranger")
        assert t.policy.max_sessions == 1
        assert ctl.tenant("stranger") is t


class TestSessions:
    def test_session_cap_typed_and_retryable(self):
        ctl = make(TenantPolicy(max_sessions=2))
        t = ctl.admit_session("acme")
        ctl.admit_session("acme")
        with pytest.raises(TenantLimit) as ei:
            ctl.admit_session("acme")
        assert ei.value.retryable is True
        # Releasing a slot re-opens admission.
        ctl.release_session(t)
        assert ctl.admit_session("acme").sessions == 2

    def test_draining_rejects_sessions_as_overloaded(self):
        ctl = make()
        ctl.draining = True
        with pytest.raises(Overloaded) as ei:
            ctl.admit_session("acme")
        assert ei.value.retryable is True

    def test_release_never_goes_negative(self):
        ctl = make()
        t = ctl.tenant("acme")
        ctl.release_session(t)
        assert t.sessions == 0


class TestRequests:
    def test_bounded_queue_overflows_to_overloaded(self):
        ctl = make(TenantPolicy(queue_depth=2))
        ctl.admit_request("acme", "op1")
        ctl.admit_request("acme", "op2")
        with pytest.raises(Overloaded) as ei:
            ctl.admit_request("acme", "op3")
        assert ei.value.retryable is True
        assert "queue full" in str(ei.value)

    def test_draining_rejects_requests(self):
        ctl = make()
        ctl.draining = True
        with pytest.raises(Overloaded):
            ctl.admit_request("acme", "op")

    def test_pending_counts_queued_plus_executing(self):
        ctl = make(TenantPolicy(queue_depth=4))
        t = ctl.admit_request("acme", "op1")
        ctl.admit_request("acme", "op2")
        t.queue.get_nowait()
        ctl.start_execute(t)
        assert t.pending == 2        # 1 queued + 1 executing
        ctl.finish_execute(t)
        assert t.pending == 1
        assert not ctl.quiesced()
        t.queue.get_nowait()
        assert ctl.quiesced()

    def test_reject_metrics_labelled_by_reason(self):
        obs.reset()
        obs.enable()
        try:
            ctl = make(TenantPolicy(queue_depth=1))
            ctl.admit_request("acme", "op")
            with pytest.raises(Overloaded):
                ctl.admit_request("acme", "op")
            ctl.draining = True
            with pytest.raises(Overloaded):
                ctl.admit_request("acme", "op")
            rejects = {
                dict(c.labels)["reason"]: c.value
                for c in obs.metrics.counters()
                if c.name == "server.rejects"
            }
            assert rejects == {"queue_full": 1, "draining": 1}
        finally:
            obs.disable()
            obs.reset()
