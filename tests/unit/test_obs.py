"""Unit tests for the observability layer: tracer, metrics, facade."""

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    render_name,
    write_snapshot,
)
from repro.obs.trace import NULL_SPAN, Tracer, read_jsonl


# --------------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------------- #


def test_tracer_disabled_returns_shared_null_span():
    t = Tracer()
    sp = t.span("anything")
    assert sp is NULL_SPAN
    with sp as inner:
        inner.event("ignored")
    assert t.events() == []
    t.instant("also-ignored")
    assert t.events() == []


def test_tracer_records_nested_spans_with_depth_and_parent():
    t = Tracer()
    t.enabled = True
    with t.span("outer", "syscall"):
        with t.span("inner", "kernel"):
            pass
    evs = t.events()
    # Inner exits first, so it is appended first.
    assert [e["name"] for e in evs] == ["inner", "outer"]
    inner, outer = evs
    assert inner["depth"] == 1 and inner["parent"] == "outer"
    assert outer["depth"] == 0 and outer["parent"] is None
    assert inner["dur_ns"] >= 0 and outer["dur_ns"] >= inner["dur_ns"]
    assert inner["ts_ns"] >= outer["ts_ns"]


def test_tracer_span_records_exception_name():
    t = Tracer()
    t.enabled = True
    with pytest.raises(ValueError):
        with t.span("boom"):
            raise ValueError("nope")
    (ev,) = t.events()
    assert ev["args"]["error"] == "ValueError"


def test_tracer_threads_get_distinct_small_tids():
    t = Tracer()
    t.enabled = True
    # Keep all workers alive at once: Python reuses thread idents after a
    # thread exits, which would fold sequential workers onto one tid.
    barrier = threading.Barrier(3)

    def work():
        barrier.wait(2.0)
        with t.span("op"):
            pass
        barrier.wait(2.0)

    threads = [threading.Thread(target=work) for _ in range(3)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    with t.span("main-op"):
        pass
    tids = {e["tid"] for e in t.events()}
    assert len(tids) == 4
    assert tids <= set(range(4))


def test_tracer_thread_nesting_is_isolated():
    """Spans on one thread must not become parents of another thread's."""
    t = Tracer()
    t.enabled = True
    inside = threading.Event()
    release = threading.Event()

    def work():
        with t.span("worker-op"):
            inside.set()
            release.wait(2.0)

    th = threading.Thread(target=work)
    th.start()
    assert inside.wait(2.0)
    with t.span("main-op"):
        pass
    release.set()
    th.join()
    by_name = {e["name"]: e for e in t.events()}
    assert by_name["main-op"]["depth"] == 0
    assert by_name["main-op"]["parent"] is None
    assert by_name["worker-op"]["depth"] == 0


def test_tracer_bounded_buffer_counts_drops():
    t = Tracer(max_events=2)
    t.enabled = True
    for i in range(5):
        t.instant(f"e{i}")
    assert len(t.events()) == 2
    assert t.dropped == 3


def test_jsonl_round_trip(tmp_path):
    t = Tracer()
    t.enabled = True
    with t.span("op", "syscall", path="/a/b"):
        t.instant("marker", "kernel")
    path = tmp_path / "trace.jsonl"
    t.write_jsonl(str(path))
    back = read_jsonl(str(path))
    assert back == t.events()


def test_chrome_export_shape(tmp_path):
    t = Tracer()
    t.enabled = True
    with t.span("creat", "syscall"):
        t.instant("kernel.mmap", "kernel")
    path = tmp_path / "trace.json"
    t.write_chrome(str(path), process_name="unit")
    doc = json.loads(path.read_text())
    evs = doc["traceEvents"]
    assert evs[0]["ph"] == "M" and evs[0]["args"]["name"] == "unit"
    complete = [e for e in evs if e["ph"] == "X"]
    instants = [e for e in evs if e["ph"] == "i"]
    assert len(complete) == 1 and complete[0]["name"] == "creat"
    assert "dur" in complete[0] and complete[0]["dur"] >= 0
    assert len(instants) == 1 and instants[0]["s"] == "t"
    # Timestamps are microseconds (floats), pid always present.
    assert all("ts" in e and "pid" in e for e in evs[1:])


def test_tracer_reset_clears_everything():
    t = Tracer(max_events=1)
    t.enabled = True
    t.instant("a")
    t.instant("b")
    assert t.dropped == 1
    t.reset()
    assert t.events() == [] and t.dropped == 0


# --------------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------------- #


def test_histogram_bucket_boundaries_are_inclusive_upper_edges():
    h = Histogram("h", bounds=(10, 20, 30))
    for v in (5, 10, 11, 20, 21, 30, 31, 1000):
        h.observe(v)
    # buckets: <=10, <=20, <=30, overflow
    assert h.counts == [2, 2, 2, 2]
    assert h.count == 8
    assert h.min == 5 and h.max == 1000


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=(30, 10))
    with pytest.raises(ValueError):
        Histogram("h", bounds=())


def test_histogram_percentiles_single_observation():
    h = Histogram("h")
    h.observe(4_321)
    # Min/max clamping: one observation answers every percentile exactly.
    assert h.percentile(50) == pytest.approx(4_321)
    assert h.percentile(99) == pytest.approx(4_321)


def test_histogram_percentile_interpolation():
    h = Histogram("h", bounds=(100, 200))
    for _ in range(100):
        h.observe(150)  # all in the (100, 200] bucket
    # p50 target is the 50th of 100 observations, halfway through the
    # bucket: 100 + 0.5 * (200 - 100) = 150.
    assert h.percentile(50) == pytest.approx(150.0)
    # The upper edge is clamped by the observed max, so p100 reports the
    # true maximum rather than the bucket edge.
    assert h.percentile(100) == pytest.approx(150.0)


def test_histogram_percentile_bounds_checked():
    h = Histogram("h")
    with pytest.raises(ValueError):
        h.percentile(0)
    with pytest.raises(ValueError):
        h.percentile(101)
    assert h.percentile(50) == 0.0  # empty → 0


def test_histogram_merge_is_exact():
    a = Histogram("a", bounds=(10, 20))
    b = Histogram("b", bounds=(10, 20))
    for v in (1, 15):
        a.observe(v)
    for v in (18, 99):
        b.observe(v)
    a.merge(b)
    assert a.count == 4
    assert a.counts == [1, 2, 1]
    assert a.min == 1 and a.max == 99
    assert a.total == pytest.approx(1 + 15 + 18 + 99)


def test_histogram_merge_requires_same_bounds():
    a = Histogram("a", bounds=(10,))
    b = Histogram("b", bounds=(10, 20))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_summary_keys():
    h = Histogram("h")
    assert h.summary()["count"] == 0
    h.observe(1000)
    s = h.summary()
    assert set(s) >= {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}
    assert s["mean"] == pytest.approx(1000)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #


def test_counter_labels_and_rollup():
    reg = MetricsRegistry()
    reg.counter("kernel.crossings", reason="mmap").inc(3)
    reg.counter("kernel.crossings", reason="verification").inc(2)
    snap = reg.snapshot()["counters"]
    assert snap["kernel.crossings{reason=mmap}"] == 3
    assert snap["kernel.crossings{reason=verification}"] == 2
    assert snap["kernel.crossings"] == 5
    assert reg.counter_total("kernel.crossings") == 5


def test_counter_label_named_name_is_allowed():
    """`name` must be usable as a label key (failpoints use it)."""
    reg = MetricsRegistry()
    reg.counter("failpoints.hit", name="dir.write_mid").inc()
    snap = reg.snapshot()["counters"]
    assert snap["failpoints.hit{name=dir.write_mid}"] == 1


def test_counter_is_monotonic():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_same_labels_same_instance():
    reg = MetricsRegistry()
    assert reg.counter("c", a=1, b=2) is reg.counter("c", b=2, a=1)
    assert reg.counter("c") is not reg.counter("c", a=1)


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(1.5)
    g.add(0.5)
    assert reg.snapshot()["gauges"]["g"] == pytest.approx(2.0)


def test_registry_reset():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(1)
    reg.histogram("h").observe(1)
    reg.reset()
    snap = reg.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_default_buckets_cover_sim_latency_range():
    assert LATENCY_BUCKETS_NS[0] <= 250
    assert LATENCY_BUCKETS_NS[-1] >= 100_000_000
    assert list(LATENCY_BUCKETS_NS) == sorted(LATENCY_BUCKETS_NS)


def test_render_name():
    assert render_name("x", ()) == "x"
    assert render_name("x", (("a", "1"),)) == "x{a=1}"


def test_format_and_write_snapshot(tmp_path):
    reg = MetricsRegistry()
    reg.counter("kernel.crossings", reason="mmap").inc(7)
    reg.gauge("run.threads").set(4)
    reg.histogram("lat").observe(1234)
    snap = reg.snapshot()
    text = format_snapshot(snap, title="unit")
    assert "== metrics: unit ==" in text
    assert "kernel.crossings{reason=mmap}" in text
    assert "p95=" in text
    path = tmp_path / "m.json"
    write_snapshot(str(path), snap, bench="unit-test")
    doc = json.loads(path.read_text())
    assert doc["bench"] == "unit-test"
    assert doc["metrics"]["counters"]["kernel.crossings"] == 7


# --------------------------------------------------------------------------- #
# Facade (repro.obs)
# --------------------------------------------------------------------------- #


def test_facade_disabled_records_nothing():
    assert not obs.enabled
    obs.count("x")
    obs.kernel_crossing("mmap")
    obs.lock_wait("spin", 100)
    assert obs.span("op") is NULL_SPAN
    snap = obs.metrics.snapshot()
    assert snap["counters"] == {}


def test_facade_enable_disable_round_trip():
    obs.enable(trace=True)
    assert obs.is_enabled() and obs.tracer.enabled
    obs.count("x", 2)
    obs.kernel_crossing("verification")
    with obs.span("op"):
        pass
    obs.disable()
    snap = obs.metrics.snapshot()["counters"]
    assert snap["x"] == 2
    assert snap["kernel.crossings{reason=verification}"] == 1
    assert [e["name"] for e in obs.tracer.events() if e["ph"] == "X"] == ["op"]
    # Disabled again: nothing further is recorded.
    obs.count("x", 5)
    assert obs.metrics.snapshot()["counters"]["x"] == 2


def test_facade_metrics_only_mode_skips_spans():
    obs.enable(trace=False)
    assert obs.span("op") is NULL_SPAN
    obs.kernel_crossing("mmap")
    obs.disable()
    assert obs.tracer.events() == []
    assert obs.metrics.counter_total("kernel.crossings") == 1


def test_stats_diff_and_publish_stats():
    from repro.pm.device import PMStats

    now = PMStats(stores=10, loads=4, fences=3)
    then = PMStats(stores=4, loads=1, fences=1)
    d = obs.stats_diff(now, then)
    assert (d.stores, d.loads, d.fences) == (6, 3, 2)
    with pytest.raises(TypeError):
        obs.stats_diff(now, object())
    obs.publish_stats("pm", d)
    snap = obs.metrics.snapshot()["counters"]
    assert snap["pm.stores"] == 6 and snap["pm.fences"] == 2


def test_histogram_percentile_overflow_bucket_uses_observed_max():
    h = Histogram("h", bounds=(10, 20))
    for v in (500, 600, 700):   # everything lands in the overflow bucket
        h.observe(v)
    # No finite upper edge exists; percentiles interpolate between the last
    # bound and the observed max, never above it.
    assert 20 <= h.percentile(50) <= 700
    assert h.percentile(99) <= 700


def test_histogram_percentile_zero_valued_samples():
    h = Histogram("h", bounds=(10, 20))
    for _ in range(5):
        h.observe(0)
    # min == max == 0 must short-circuit to the exact value (0 is falsy —
    # a naive `min or default` would misreport).
    assert h.percentile(50) == 0.0
    assert h.percentile(99) == 0.0


def test_histogram_percentile_constant_stream_is_exact():
    h = Histogram("h", bounds=(100, 200, 300))
    for _ in range(1000):
        h.observe(250)
    for q in (1, 50, 95, 99, 100):
        assert h.percentile(q) == pytest.approx(250.0)


def test_histogram_bucket_counts_view():
    h = Histogram("h", bounds=(10, 20))
    for v in (5, 15, 99):
        h.observe(v)
    bounds, counts, count, total = h.bucket_counts()
    assert list(bounds) == [10, 20]
    assert counts == [1, 1, 1]
    assert count == 3 and total == pytest.approx(119)


def test_labeled_histograms_roll_up_to_base_name():
    reg = MetricsRegistry()
    reg.histogram("libfs.syscall.ns", app_id="a").observe(1000)
    reg.histogram("libfs.syscall.ns", app_id="b").observe(3000)
    snap = reg.snapshot()["histograms"]
    assert snap["libfs.syscall.ns{app_id=a}"]["count"] == 1
    assert snap["libfs.syscall.ns{app_id=b}"]["count"] == 1
    # The synthesized base-name summary merges both label sets exactly.
    agg = snap["libfs.syscall.ns"]
    assert agg["count"] == 2
    assert agg["min"] == 1000 and agg["max"] == 3000


def test_histogram_rollup_skips_mixed_bounds():
    reg = MetricsRegistry()
    reg.histogram("h", bounds=(10,), app_id="a").observe(1)
    reg.histogram("h", bounds=(10, 20), app_id="b").observe(1)
    snap = reg.snapshot()["histograms"]
    assert "h" not in snap  # merge would be lossy; no aggregate emitted
    assert snap["h{app_id=a}"]["count"] == 1


def test_registry_thread_safety_under_concurrent_label_creation():
    reg = MetricsRegistry()
    nthreads, per_thread = 8, 64
    barrier = threading.Barrier(nthreads)

    def work(tid: int) -> None:
        barrier.wait(5.0)
        for i in range(per_thread):
            # Everyone hammers the same base name with fresh + shared labels.
            reg.counter("c", tid=tid, i=i % 4).inc()
            reg.counter("c").inc()
            reg.histogram("h", tid=tid).observe(i + 1)

    threads = [threading.Thread(target=work, args=(t,))
               for t in range(nthreads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    total = nthreads * per_thread
    assert reg.counter_total("c") == 2 * total
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 2 * total
    assert snap["histograms"]["h"]["count"] == total
    per_label = [v for k, v in snap["counters"].items()
                 if k.startswith("c{") and "tid=" in k]
    assert sum(per_label) == total


# --------------------------------------------------------------------------- #
# Ambient dimensional context
# --------------------------------------------------------------------------- #


def test_scoped_context_labels_counters_and_restores():
    obs.enable()
    with obs.scoped_context(app_id="app1", volume="vol0"):
        obs.count("x")
        assert obs.context_labels() == {"app_id": "app1", "volume": "vol0"}
        with obs.scoped_context(volume="vol1"):
            obs.count("x")   # inner override
        assert obs.context_labels()["volume"] == "vol0"
    obs.count("x")           # outside any context
    obs.disable()
    c = obs.metrics.snapshot()["counters"]
    assert c["x{app_id=app1,volume=vol0}"] == 1
    assert c["x{app_id=app1,volume=vol1}"] == 1
    assert c["x"] == 3       # rollup: 2 labeled + 1 bare


def test_explicit_labels_win_over_ambient():
    obs.enable()
    with obs.scoped_context(op="ambient", app_id="a"):
        obs.count("y", op="explicit")
    obs.disable()
    c = obs.metrics.snapshot()["counters"]
    assert c["y{app_id=a,op=explicit}"] == 1


def test_set_and_clear_context():
    obs.set_context(app_id="z")
    assert obs.context_labels() == {"app_id": "z"}
    obs.set_context(app_id=None, volume="v")
    assert obs.context_labels() == {"volume": "v"}
    obs.clear_context()
    assert obs.context_labels() == {}


def test_context_is_thread_local():
    obs.set_context(app_id="main")
    seen = {}

    def work():
        seen["worker"] = obs.context_labels()

    th = threading.Thread(target=work)
    th.start()
    th.join()
    obs.clear_context()
    assert seen["worker"] == {}


def test_pmstats_snapshot_and_diff():
    from repro.pm.device import PMStats

    s = PMStats(stores=5, fences=2)
    snap = s.snapshot()
    assert snap == s and snap is not s
    s.stores += 3
    delta = s.diff(snap)
    assert delta.stores == 3 and delta.fences == 0
    assert s.as_dict()["stores"] == 8
    # Historical alias kept.
    assert s.delta(snap) == delta
