"""Unit tests for the DES engine and the cost model/recipes plumbing."""

import pytest

from repro.perf.costmodel import COST
from repro.perf.recipes import phases
from repro.perf.runner import run_workload
from repro.perf.simulator import Experiment, Simulator
from repro.perf.stats import format_table, geomean, relative


class TestSimulator:
    def test_delays_accumulate(self):
        exp = Experiment()

        def stream(experiment, tid):
            while True:
                yield [("delay", 100.0)]

        stats = exp.run_threads(1, stream, horizon_ns=1000.0)
        assert stats[0].ops == 10

    def test_parallel_threads_independent(self):
        exp = Experiment()

        def stream(experiment, tid):
            while True:
                yield [("delay", 100.0)]

        exp.run_threads(4, stream, horizon_ns=1000.0)
        assert sum(t.ops for t in exp.threads) == 40

    def test_lock_serializes(self):
        exp = Experiment()

        def stream(experiment, tid):
            lock = experiment.lock("L")
            while True:
                yield [("lock", lock), ("delay", 100.0), ("unlock", lock)]

        exp.run_threads(4, stream, horizon_ns=1000.0)
        # One lock, 100ns critical section: ~10 total ops regardless of
        # thread count.
        assert sum(t.ops for t in exp.threads) <= 11

    def test_lock_fifo_fairness(self):
        exp = Experiment()

        def stream(experiment, tid):
            lock = experiment.lock("L")
            while True:
                yield [("lock", lock), ("delay", 100.0), ("unlock", lock)]

        stats = exp.run_threads(4, stream, horizon_ns=4000.0)
        counts = [t.ops for t in stats]
        assert max(counts) - min(counts) <= 1  # FIFO hands out turns evenly

    def test_server_capacity(self):
        exp = Experiment()

        def stream(experiment, tid):
            srv = experiment.server("S", capacity=2)
            while True:
                yield [("use", srv, 100.0)]

        exp.run_threads(8, stream, horizon_ns=1000.0)
        # Two slots, 100ns each: ~20 total.
        assert 18 <= sum(t.ops for t in exp.threads) <= 22

    def test_simulator_event_order(self):
        sim = Simulator()
        order = []
        sim.schedule(50, lambda: order.append("b"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(90, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 90

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)


class TestCostModel:
    def test_numa_latency(self):
        assert COST.pm_lat(0, read=True) == COST.pm_read_lat
        remote = COST.pm_lat(30, read=True)
        assert remote == pytest.approx(COST.pm_read_lat * COST.numa_remote_factor)

    def test_socket_mapping(self):
        assert COST.socket_of(0) == 0
        assert COST.socket_of(23) == 0
        assert COST.socket_of(24) == 1
        assert COST.socket_of(47) == 1

    def test_verify_time_scales_with_bytes(self):
        small = COST.verify_time(4096)
        big = COST.verify_time(1 << 30)
        assert big > 100 * small


class TestRecipes:
    def test_every_fs_and_op_has_a_recipe(self):
        ops = [
            {"op": "create", "dir": "d", "depth": 1, "bucket": 0, "tail": 0},
            {"op": "unlink", "dir": "d", "depth": 1, "bucket": 0},
            {"op": "open", "dir": "d", "depth": 5},
            {"op": "stat", "dir": "d", "depth": 2},
            {"op": "readdir", "dir": "d", "depth": 1, "entries": 16},
            {"op": "rename", "dir": "d", "dir2": "e", "depth": 1,
             "bucket": 0, "bucket2": 1, "cross": True, "is_dir": False},
            {"op": "truncate", "dir": "d", "depth": 1, "file": 0},
            {"op": "read", "size": 4096},
            {"op": "write", "size": 4096},
            {"op": "nop"},
        ]
        for fs in ("arckfs", "arckfs+", "ext4", "pmfs", "nova", "winefs",
                   "odinfs", "splitfs", "strata"):
            for ctx in ops:
                sym = phases(fs, dict(ctx), COST, nthreads=4, tid=1)
                assert sym, (fs, ctx)
                balance = 0
                for p in sym:
                    if p[0] == "lock":
                        balance += 1
                    elif p[0] == "unlock":
                        balance -= 1
                    assert balance >= 0, f"{fs}/{ctx}: unlock before lock"
                assert balance == 0, f"{fs}/{ctx}: unbalanced locks"

    def test_kernel_ops_pay_syscalls(self):
        for fs in ("ext4", "pmfs", "nova"):
            sym = phases(fs, {"op": "open", "dir": "d", "depth": 1}, COST, 1, 0)
            assert ("syscall",) in sym

    def test_arckfs_ops_pay_no_syscalls(self):
        for op in ("create", "open", "unlink"):
            ctx = {"op": op, "dir": "d", "depth": 1, "bucket": 0, "tail": 0}
            sym = phases("arckfs+", ctx, COST, 1, 0)
            assert ("syscall",) not in sym

    def test_dir_relocation_takes_the_lease(self):
        ctx = {"op": "rename", "dir": "a", "dir2": "b", "depth": 1,
               "bucket": 0, "bucket2": 1, "cross": True, "is_dir": True}
        sym = phases("arckfs+", ctx, COST, 1, 0)
        assert ("lock", "kernel.rename_lease") in sym
        sym_buggy = phases("arckfs", ctx, COST, 1, 0)
        assert ("lock", "kernel.rename_lease") not in sym_buggy

    def test_unknown_fs_rejected(self):
        with pytest.raises(ValueError):
            phases("zfs", {"op": "open", "depth": 1}, COST, 1, 0)


class TestStats:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped

    def test_relative(self):
        out = relative({1: 5.0, 2: 10.0}, {1: 10.0, 2: 10.0})
        assert out == {1: 50.0, 2: 100.0}

    def test_format_table_renders(self):
        text = format_table("T", "fs", [1, 2], {"a": {1: 1.0, 2: 2.0}})
        assert "T" in text and "a" in text and "2.000" in text


class TestRunner:
    def test_throughput_scales_for_contention_free_workload(self):
        class W:
            name = "w"

            @staticmethod
            def op_ctx(tid, i, n):
                return {"op": "open", "dir": f"p{tid}", "depth": 1}

        one = run_workload("arckfs+", W, 1).mops
        eight = run_workload("arckfs+", W, 8).mops
        assert eight == pytest.approx(8 * one, rel=0.05)

    def test_result_reports_per_thread_ops(self):
        class W:
            name = "w"

            @staticmethod
            def op_ctx(tid, i, n):
                return {"op": "nop"}

        res = run_workload("arckfs+", W, 4)
        assert len(res.per_thread_ops) == 4
        assert all(ops > 0 for ops in res.per_thread_ops)
