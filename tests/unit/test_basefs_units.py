"""Unit tests for baseline-FS internals beyond the conformance battery."""

import pytest

from repro.basefs import make_baseline
from repro.basefs.ext4 import Journal
from repro.errors import NoEntry, WouldLoop
from repro.pm.device import PMDevice


def dev():
    return PMDevice(32 * 1024 * 1024, crash_tracking=False)


class TestJournal:
    def test_txn_ids_monotonic(self):
        d = dev()
        j = Journal(d, 1024 * 1024, 256 * 1024)
        assert j.commit([(0, b"a")]) > 0
        assert j.commit([(8, b"b")]) > 0
        assert j.txn_id == 2

    def test_replay_stops_at_uncommitted_tail(self):
        d = dev()
        j = Journal(d, 1024 * 1024, 256 * 1024)
        j.commit([(100, b"yes")])
        # Half-written second transaction: header but no commit block.
        import struct

        d.store(j.head, struct.pack("<QI", 99, 1))
        fresh = PMDevice.from_image(d.durable_image(), crash_tracking=False)
        j2 = Journal(fresh, 1024 * 1024, 256 * 1024)
        assert j2.replay() == 1
        assert fresh.load(100, 3) == b"yes"

    def test_wrap_resets_to_start(self):
        d = dev()
        j = Journal(d, 1024 * 1024, 4096)
        for i in range(40):  # overflow the tiny ring
            j.commit([(i * 8, b"x" * 64)])
        assert 1024 * 1024 <= j.head <= 1024 * 1024 + 4096


class TestVFSDetails:
    def test_dcache_hit_counting(self):
        fs = make_baseline("ext4", dev())
        fs.mkdir("/a")
        fs.stat("/a")
        fs.stat("/a")
        assert fs.stats.dcache_hits >= 1

    def test_dcache_invalidated_on_rename(self):
        fs = make_baseline("ext4", dev())
        fs.makedirs("/a/b")
        fs.stat("/a/b")  # populate dcache
        fs.mkdir("/c")
        fs.rename("/a", "/c/a2")
        with pytest.raises(NoEntry):
            fs.stat("/a/b")
        assert fs.stat("/c/a2/b").is_dir

    def test_rename_into_own_subtree_rejected(self):
        fs = make_baseline("nova", dev())
        fs.makedirs("/a/b")
        with pytest.raises(WouldLoop):
            fs.rename("/a", "/a/b/x")

    def test_syscall_counting(self):
        fs = make_baseline("pmfs", dev())
        s0 = fs.stats.syscalls
        fd = fs.creat("/f")
        fs.pwrite(fd, b"x", 0)
        fs.pread(fd, 1, 0)
        fs.close(fd)
        assert fs.stats.syscalls == s0 + 4  # every op is a kernel entry


class TestPMFSUndo:
    def test_undo_region_advances_and_wraps(self):
        fs = make_baseline("pmfs", dev())
        start = fs._undo_start
        for i in range(50):
            fs.close(fs.creat(f"/f{i}"))
        assert fs._undo_head > start
        assert fs._undo_head <= fs.device.size


class TestWineFS:
    def test_alignment_tracking_exists(self):
        fs = make_baseline("winefs", dev())
        fd = fs.creat("/big")
        fs.pwrite(fd, b"z" * (8 * 4096), 0)
        fs.close(fd)
        assert fs.unaligned_allocs >= 0  # counter maintained


class TestOdinFS:
    def test_small_writes_not_delegated(self):
        fs = make_baseline("odinfs", dev())
        fd = fs.creat("/small")
        fs.pwrite(fd, b"tiny", 0)
        assert fs.pool.delegated == 0
        fs.pwrite(fd, b"B" * 8192, 0)
        assert fs.pool.delegated > 0
        fs.close(fd)

    def test_delegated_content_correct_across_sockets(self):
        fs = make_baseline("odinfs", dev())
        fd = fs.creat("/wide")
        payload = bytes(i % 256 for i in range(32 * 4096))
        fs.pwrite(fd, payload, 0)
        assert fs.pread(fd, len(payload), 0) == payload
        fs.close(fd)


class TestSplitFS:
    def test_overlay_partial_overlap(self):
        fs = make_baseline("splitfs", dev())
        fd = fs.creat("/f")
        fs.pwrite(fd, b"AAAAAAAA", 0)
        fs.fsync(fd)  # relink: kernel now has 8 A's
        fs.pwrite(fd, b"bb", 3)  # staged only
        assert fs.pread(fd, 8, 0) == b"AAAbbAAA"
        fs.fsync(fd)
        assert fs.pread(fd, 8, 0) == b"AAAbbAAA"

    def test_stat_sees_staged_growth(self):
        fs = make_baseline("splitfs", dev())
        fd = fs.creat("/f")
        fs.pwrite(fd, b"x" * 100, 0)
        assert fs.stat("/f").size == 100  # before any relink
        fs.close(fd)


class TestStrata:
    def test_digest_threshold_triggers(self):
        fs = make_baseline("strata", dev())
        fs.DIGEST_THRESHOLD = 4
        fd = fs.creat("/f")
        for i in range(5):
            fs.pwrite(fd, b"x", i)
        # The 4th append digested automatically.
        assert fs.digested_records >= 4
        fs.close(fd)

    def test_reads_force_digest_of_pending_writes(self):
        fs = make_baseline("strata", dev())
        fd = fs.creat("/f")
        fs.pwrite(fd, b"fresh", 0)
        assert fs.pread(fd, 5, 0) == b"fresh"
        fs.close(fd)
