"""Workload definitions: the simulated op streams are well-formed and the
functional drivers really perform the Table 3 semantics on a live FS."""

import pytest

from repro.workloads.filebench import (
    FILEBENCH_SIMS,
    FilebenchEngine,
    PERSONALITIES,
    VARMAIL,
    WEBPROXY,
)
from repro.workloads.fio import FIO_WORKLOADS
from repro.workloads.fxmark import FXMARK, METADATA_WORKLOADS, run_functional
from repro.workloads.microbench import METADATA_OPS
from tests.conftest import build_fs


class TestFxMarkDefinitions:
    def test_all_twelve_present(self):
        assert set(METADATA_WORKLOADS) == set(FXMARK)
        assert len(METADATA_WORKLOADS) == 12

    @pytest.mark.parametrize("name", METADATA_WORKLOADS)
    def test_ctx_stream_well_formed(self, name):
        w = FXMARK[name]
        for tid in (0, 3):
            for i in range(5):
                ctx = w.op_ctx(tid, i, 8)
                assert "op" in ctx
                assert ctx["op"] in ("create", "unlink", "open", "stat",
                                     "readdir", "rename", "truncate")

    def test_private_workloads_use_private_dirs(self):
        for name in ("MRPL", "MRDL", "MWCL", "MWUL"):
            a = FXMARK[name].op_ctx(0, 0, 8)
            b = FXMARK[name].op_ctx(1, 0, 8)
            assert a["dir"] != b["dir"]

    def test_shared_workloads_share(self):
        for name in ("MRPM", "MRDM", "MWCM", "MWUM"):
            a = FXMARK[name].op_ctx(0, 0, 8)
            b = FXMARK[name].op_ctx(1, 0, 8)
            assert a["dir"] == b["dir"] == "shared"

    def test_mwrm_crosses_into_shared(self):
        ctx = FXMARK["MWRM"].op_ctx(2, 0, 8)
        assert ctx["cross"] and ctx["dir2"] == "shared"

    @pytest.mark.parametrize("name", METADATA_WORKLOADS)
    def test_functional_single_thread(self, name):
        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=4096)
        total = run_functional(FXMARK[name], fs, nthreads=1, ops_per_thread=8)
        assert total == 8

    @pytest.mark.parametrize("name", ["MWCL", "MWUL", "MRPL", "MWRL"])
    def test_functional_multithreaded(self, name):
        """Real threads through the real LibFS: no crashes, correct counts."""
        _dev, kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=4096)
        total = run_functional(FXMARK[name], fs, nthreads=4, ops_per_thread=8)
        assert total == 32
        fs.release_all()
        assert kernel.audit_tree() == []

    def test_dwtl_semantics(self):
        """DWTL: 'Reduces the size of a private file by 4K' per op."""
        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=512)
        w = FXMARK["DWTL"]
        w.prepare(fs, 1)
        before = fs.stat("/p0/big").size
        w.functional(fs, 0, 0)
        assert fs.stat("/p0/big").size == before - 4096

    def test_mwcm_creates_without_write(self):
        """The artifact's MWCM variant omits the write (paper §5.2)."""
        _dev, _kernel, fs = build_fs()
        w = FXMARK["MWCM"]
        w.prepare(fs, 2)
        w.functional(fs, 0, 0)
        created = [n for n in fs.readdir("/shared") if n.startswith("n0_")]
        assert created and fs.stat(f"/shared/{created[0]}").size == 0


class TestMicrobench:
    @pytest.mark.parametrize("op", ["create", "open", "delete", "rename", "stat"])
    def test_functional_ops(self, op):
        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=2048)
        m = METADATA_OPS[op]
        m.prepare(fs, 1)
        for i in range(4):
            m.functional(fs, 0, i)

    def test_open_is_five_deep(self):
        ctx = METADATA_OPS["open"].op_ctx(0, 0, 1)
        assert ctx["depth"] == 5


class TestFio:
    @pytest.mark.parametrize("name", sorted(FIO_WORKLOADS))
    def test_functional(self, name):
        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=256)
        w = FIO_WORKLOADS[name]
        w.prepare(fs, 1)
        fd = fs.open("/fio0")
        for i in range(8):
            w.functional(fs, fd, 0, i)
        fs.close(fd)

    def test_ctx_is_data_op(self):
        for w in FIO_WORKLOADS.values():
            ctx = w.op_ctx(0, 0, 4)
            assert ctx["op"] in ("read", "write")
            assert ctx["size"] == 4096


class TestFilebench:
    def test_personalities_have_expected_mix(self):
        ops = [s for s, _ in WEBPROXY.loop]
        assert ops.count("open") == 5
        assert ops.count("create") == 1
        vops = [s for s, _ in VARMAIL.loop]
        assert vops.count("fsync") == 2  # varmail is fsync-heavy

    def test_sim_ctx_shared_adds_filename_locks(self):
        sim = FILEBENCH_SIMS["webproxy-shared"]
        ctx = sim.op_ctx(0, 0, 4)
        assert "flock" in ctx
        priv = FILEBENCH_SIMS["webproxy-private"]
        assert "flock" not in priv.op_ctx(0, 0, 4)

    @pytest.mark.parametrize("shared", [True, False], ids=["shared", "private"])
    def test_engine_runs_multithreaded(self, shared):
        _dev, kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=2048)
        engine = FilebenchEngine(fs, PERSONALITIES["varmail"], nthreads=4,
                                 shared=shared)
        flowops = engine.run(loops_per_thread=4)
        assert engine.loops == 16
        assert flowops == 16 * len(VARMAIL.loop)
        fs.release_all()
        assert kernel.audit_tree() == []

    def test_shared_engine_serializes_same_filename(self):
        """Two threads hammering one file under the filename lock: no
        lost updates, no crashes — the framework's fine-grained locking."""
        import threading

        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=512)
        engine = FilebenchEngine(fs, PERSONALITIES["webproxy"], nthreads=2,
                                 shared=True)
        engine.prepare()
        errors = []

        def worker(tid):
            try:
                for i in range(6):
                    engine.run_loop(tid, 0)  # iteration 0 -> same fileno
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        ts = [threading.Thread(target=worker, args=(t,)) for t in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors


class TestFxMarkDataOps:
    def test_data_workloads_defined(self):
        from repro.workloads.fxmark import DATA_WORKLOADS

        assert set(DATA_WORKLOADS) == {"DRBL", "DRBM", "DRBH", "DWOL"}
        for w in DATA_WORKLOADS.values():
            assert w.is_data
            ctx = w.op_ctx(0, 0, 4)
            assert ctx["op"] in ("read", "write") and ctx["size"] == 4096

    @pytest.mark.parametrize("name", ["DRBL", "DRBM", "DRBH", "DWOL"])
    def test_functional(self, name):
        from repro.workloads.fxmark import DATA_WORKLOADS

        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=512)
        w = DATA_WORKLOADS[name]
        w.prepare(fs, 2)
        for i in range(4):
            w.functional(fs, 0, i)
            w.functional(fs, 1, i)

    def test_data_path_identical_across_variants(self):
        """§5.2: ArckFS+ matches ArckFS on data ops (DES)."""
        from repro.perf.runner import run_workload
        from repro.workloads.fxmark import DATA_WORKLOADS

        for w in DATA_WORKLOADS.values():
            a = run_workload("arckfs", w, 8).mops
            p = run_workload("arckfs+", w, 8).mops
            assert abs(p / a - 1.0) < 0.02

    def test_arckfs_beats_kernel_fs_on_data(self):
        from repro.perf.runner import run_workload
        from repro.workloads.fxmark import DATA_WORKLOADS

        for w in DATA_WORKLOADS.values():
            arck = run_workload("arckfs+", w, 48).mops
            for fs_name in ("pmfs", "ext4", "nova"):
                assert arck > run_workload(fs_name, w, 48).mops
