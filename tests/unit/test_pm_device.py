"""Unit tests for the simulated PM device (repro.pm.device).

These pin down the persistency semantics everything above relies on:
stores are volatile until flush+fence, un-fenced lines can persist in any
order (the §4.2 window), fences collapse the nondeterminism.
"""

import pytest

from repro.errors import PersistOrderError
from repro.pm import CACHE_LINE, PMDevice


@pytest.fixture
def dev():
    return PMDevice(64 * 1024)


class TestBasics:
    def test_load_store_roundtrip(self, dev):
        dev.store(100, b"hello")
        assert dev.load(100, 5) == b"hello"

    def test_initial_zero(self, dev):
        assert dev.load(0, 128) == b"\0" * 128

    def test_size_rounded_to_line(self):
        dev = PMDevice(100)
        assert dev.size == 128

    def test_out_of_range_rejected(self, dev):
        with pytest.raises(PersistOrderError):
            dev.load(dev.size - 2, 4)
        with pytest.raises(PersistOrderError):
            dev.store(-1, b"x")

    def test_store_spanning_lines(self, dev):
        data = bytes(range(200 % 256)) * 1
        data = bytes(i % 256 for i in range(200))
        dev.store(CACHE_LINE - 10, data)
        assert dev.load(CACHE_LINE - 10, 200) == data

    def test_empty_store_is_noop(self, dev):
        dev.store(0, b"")
        assert dev.dirty_lines() == []

    def test_stats_counted(self, dev):
        dev.store(0, b"abcd")
        dev.load(0, 4)
        dev.clwb(0, 4)
        dev.sfence()
        assert dev.stats.stores == 1
        assert dev.stats.loads == 1
        assert dev.stats.clwbs == 1
        assert dev.stats.fences == 1
        assert dev.stats.bytes_stored == 4


class TestAtomicity:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_atomic_sizes_ok(self, dev, n):
        dev.atomic_store(n * 4, b"\xff" * n)

    def test_atomic_bad_size(self, dev):
        with pytest.raises(PersistOrderError):
            dev.atomic_store(0, b"\xff" * 3)

    def test_atomic_misaligned(self, dev):
        with pytest.raises(PersistOrderError):
            dev.atomic_store(4, b"\xff" * 8)


class TestDurability:
    def test_store_not_durable_until_fence(self, dev):
        dev.store(0, b"AAAA")
        assert dev.durable_image()[:4] == b"\0\0\0\0"
        dev.clwb(0, 4)
        assert dev.durable_image()[:4] == b"\0\0\0\0"
        dev.sfence()
        assert dev.durable_image()[:4] == b"AAAA"

    def test_fence_without_clwb_persists_nothing(self, dev):
        dev.store(0, b"AAAA")
        dev.sfence()
        assert dev.durable_image()[:4] == b"\0\0\0\0"

    def test_clwb_snapshots_current_content(self, dev):
        # A store after clwb is NOT covered by the following fence.
        dev.store(0, b"A")
        dev.clwb(0, 1)
        dev.store(0, b"B")
        dev.sfence()
        assert dev.durable_image()[0:1] == b"A"
        assert dev.load(0, 1) == b"B"

    def test_ntstore_needs_fence(self, dev):
        dev.ntstore(0, b"ZZ")
        assert dev.durable_image()[:2] == b"\0\0"
        dev.sfence()
        assert dev.durable_image()[:2] == b"ZZ"

    def test_persist_helper(self, dev):
        dev.store(10, b"xyz")
        dev.persist(10, 3)
        assert dev.durable_image()[10:13] == b"xyz"

    def test_drain(self, dev):
        dev.store(0, b"A")
        dev.store(5000, b"B")
        dev.drain()
        img = dev.durable_image()
        assert img[0:1] == b"A" and img[5000:5001] == b"B"
        assert dev.dirty_lines() == []


class TestCrashStates:
    def test_unfenced_line_may_or_may_not_persist(self, dev):
        dev.store(0, b"A")
        images = list(dev.enumerate_crash_images())
        firsts = sorted(img[0:1] for img in images)
        assert firsts == [b"\0", b"A"]

    def test_unfenced_lines_unordered(self, dev):
        """The §4.2 window: a later store can persist while an earlier one
        does not, when no fence separates them (different cache lines)."""
        dev.store(0, b"BODY")  # line 0
        dev.clwb(0, 4)  # queued but NOT fenced
        dev.store(CACHE_LINE, b"MARK")  # line 1 — 'later' store
        dev.clwb(CACHE_LINE, 4)
        states = set()
        for img in dev.enumerate_crash_images():
            states.add((img[0:4] == b"BODY", img[CACHE_LINE : CACHE_LINE + 4] == b"MARK"))
        assert (False, True) in states  # marker persisted, body lost

    def test_fence_orders_persistence(self, dev):
        """With the ArckFS+ fence, marker-persisted implies body-persisted."""
        dev.store(0, b"BODY")
        dev.clwb(0, 4)
        dev.sfence()  # the one-line patch of §4.2
        dev.store(CACHE_LINE, b"MARK")
        dev.clwb(CACHE_LINE, 4)
        for img in dev.enumerate_crash_images():
            if img[CACHE_LINE : CACHE_LINE + 4] == b"MARK":
                assert img[0:4] == b"BODY"

    def test_multiple_versions_of_one_line(self, dev):
        dev.store(0, b"1")
        dev.store(0, b"2")
        dev.store(0, b"3")
        firsts = {img[0:1] for img in dev.enumerate_crash_images()}
        assert firsts == {b"\0", b"1", b"2", b"3"}

    def test_fence_raises_floor(self, dev):
        dev.store(0, b"1")
        dev.persist(0, 1)
        dev.store(0, b"2")
        firsts = {img[0:1] for img in dev.enumerate_crash_images()}
        assert firsts == {b"1", b"2"}  # b"\0" no longer reachable

    def test_enumeration_limit(self, dev):
        for i in range(20):
            dev.store(i * CACHE_LINE, b"x")
        with pytest.raises(PersistOrderError):
            list(dev.enumerate_crash_images(limit=100))

    def test_sampling(self, dev):
        for i in range(20):
            dev.store(i * CACHE_LINE, b"x")
        imgs = list(dev.sample_crash_images(16, seed=7))
        assert len(imgs) == 16

    def test_torn_multiline_store(self, dev):
        data = b"Q" * (2 * CACHE_LINE)
        dev.store(0, data)
        seen = set()
        for img in dev.enumerate_crash_images():
            seen.add((img[0:1] == b"Q", img[CACHE_LINE : CACHE_LINE + 1] == b"Q"))
        # All four combinations reachable: multi-line stores can tear.
        assert len(seen) == 4

    def test_from_image_reboot(self, dev):
        dev.store(0, b"payload")
        dev.persist(0, 7)
        rebooted = PMDevice.from_image(dev.durable_image())
        assert rebooted.load(0, 7) == b"payload"

    def test_crash_tracking_disabled(self):
        dev = PMDevice(4096, crash_tracking=False)
        dev.store(0, b"A")
        assert dev.durable_image()[0:1] == b"A"  # straight to media
        assert dev.dirty_lines() == []


class TestCrashSim:
    def test_find_violation(self):
        from repro.pm import CrashSim

        dev = PMDevice(4096)
        dev.store(0, b"BODY")
        dev.clwb(0, 4)
        dev.store(CACHE_LINE, b"MARK")
        dev.clwb(CACHE_LINE, 4)
        sim = CrashSim(dev)

        def checker(rebooted):
            marker = rebooted.load(CACHE_LINE, 4) == b"MARK"
            body = rebooted.load(0, 4) == b"BODY"
            if marker and not body:
                return "marker without body"
            return None

        hit = sim.find_violation(checker)
        assert hit is not None and hit[1] == "marker without body"

    def test_state_count(self):
        from repro.pm import CrashSim

        dev = PMDevice(4096)
        dev.store(0, b"a")
        dev.store(CACHE_LINE, b"b")
        assert CrashSim(dev).state_count() == 4
