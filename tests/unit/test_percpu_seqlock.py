"""Unit tests for the zero-crossing read-path primitives.

Covers the seqcount discipline (`repro.concurrency.seqlock`), per-thread
sharded counters (`repro.concurrency.percpu`), the sharded obs Counter,
and the two satellite bug fixes in `DirHashTable`:

* the ``count`` race — the seed mutated one shared int under *different*
  bucket locks, losing updates (now per-bucket shards folded on read);
* ``items()`` returning a generator that held the RCU read section open
  across consumer code (now a list built inside the section).
"""

import sys
import threading

import pytest

from repro.concurrency.percpu import ShardedCounter, ShardedStats
from repro.concurrency.rcu import RCU
from repro.concurrency.seqlock import SeqCount
from repro.core.config import ARCKFS_PLUS, ARCKFS_PLUS_ZC
from repro.libfs.hashtable import DirHashTable, NodeFreelist


class TestSeqCount:
    def test_write_parity(self):
        s = SeqCount("t")
        assert s.sequence == 0
        s.write_begin()
        assert s.sequence & 1 == 1
        s.write_end()
        assert s.sequence == 2
        assert s.writes == 1

    def test_read_validates_quiescent(self):
        s = SeqCount("t")
        start = s.read_begin()
        assert not s.read_retry(start)
        assert s.retries == 0

    def test_read_detects_overlapping_write(self):
        s = SeqCount("t")
        start = s.read_begin()
        with s.write():
            pass  # a write completed inside the reader's window
        assert s.read_retry(start)
        assert s.retries == 1

    def test_read_begin_waits_out_writer(self):
        s = SeqCount("t")
        s.write_begin()
        got = []

        def reader():
            got.append(s.read_begin())

        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # parked on the odd sequence
        s.write_end()
        t.join(timeout=5)
        assert not t.is_alive()
        assert got == [2]
        assert s.read_spins >= 1

    def test_torn_read_detected_under_thread_churn(self):
        """A reader never validates a window that a writer overlapped."""
        s = SeqCount("t")
        shared = {"a": 0, "b": 0}  # writer keeps a == b
        stop = threading.Event()
        lock = threading.Lock()

        def writer():
            i = 0
            while not stop.is_set():
                i += 1
                with lock, s.write():
                    shared["a"] = i
                    shared["b"] = i

        torn_validated = []

        def reader():
            for _ in range(4000):
                start = s.read_begin()
                a, b = shared["a"], shared["b"]
                if not s.read_retry(start) and a != b:
                    torn_validated.append((a, b))

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            w.start()
            r.start()
            r.join()
            stop.set()
            w.join()
        finally:
            sys.setswitchinterval(old)
        assert torn_validated == []


class TestShardedCounter:
    def test_single_thread_exact(self):
        c = ShardedCounter("t")
        for _ in range(100):
            c.add()
        c.add(5)
        assert c.value() == 105
        assert c.shards == 1

    def test_multithread_exact_total(self):
        c = ShardedCounter("t")
        per_thread = 10_000
        nthreads = 8

        def worker():
            for _ in range(per_thread):
                c.add()

        threads = [threading.Thread(target=worker) for _ in range(nthreads)]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old)
        assert c.value() == per_thread * nthreads
        assert c.shards == nthreads


class TestShardedStats:
    def test_fold_returns_dataclass(self):
        from repro.libfs.libfs import LibFSStats

        s = ShardedStats(LibFSStats)
        s.inc("reads")
        s.inc("bytes_read", 4096)
        folded = s.fold()
        assert isinstance(folded, LibFSStats)
        assert folded.reads == 1 and folded.bytes_read == 4096
        assert folded.writes == 0

    def test_typo_raises(self):
        from repro.libfs.libfs import LibFSStats

        s = ShardedStats(LibFSStats)
        with pytest.raises(KeyError):
            s.inc("raeds")

    def test_multithread_exact(self):
        from repro.libfs.libfs import LibFSStats

        s = ShardedStats(LibFSStats)

        def worker():
            for _ in range(5000):
                s.inc("lookups")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.fold().lookups == 20_000


class TestObsCounterSharded:
    def test_exact_under_threads(self):
        from repro.obs.metrics import Counter

        c = Counter("test.sharded")

        def worker():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old)
        assert c.value == 80_000

    def test_negative_rejected(self):
        from repro.obs.metrics import Counter

        with pytest.raises(ValueError):
            Counter("t").inc(-1)


def _table(config):
    return DirHashTable(config, RCU("test.rcu"), NodeFreelist(), tag="t")


class TestCountRace:
    """Regression for the seed's shared-int count.

    Threads insert into *different* buckets, each holding only its own
    bucket lock.  The seed's ``self.count += 1`` raced across those locks
    and lost updates; the per-bucket shards make the fold exact.
    """

    @pytest.mark.parametrize("config", [ARCKFS_PLUS, ARCKFS_PLUS_ZC],
                             ids=lambda c: c.name)
    def test_concurrent_inserts_exact_count(self, config):
        table = _table(config)
        per_thread = 400
        nthreads = 8

        def worker(tid):
            for i in range(per_thread):
                name = f"t{tid}_{i}".encode()
                bucket = table.bucket_of(name)
                with bucket.lock:
                    node = table.freelist.alloc(name, 1000 + i, 1, 1, 1, None)
                    table.insert_locked(node)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(nthreads)]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old)
        assert table.count == per_thread * nthreads

    def test_remove_decrements(self):
        table = _table(ARCKFS_PLUS)
        names = [f"f{i}".encode() for i in range(50)]
        for i, name in enumerate(names):
            bucket = table.bucket_of(name)
            with bucket.lock:
                table.insert_locked(
                    table.freelist.alloc(name, i + 2, 1, 1, 1, None))
        assert table.count == 50
        for name in names[:20]:
            bucket = table.bucket_of(name)
            with bucket.lock:
                assert table.remove_locked(name) is not None
        assert table.count == 30


class TestItemsSnapshot:
    def test_items_returns_list_and_exits_read_section(self):
        table = _table(ARCKFS_PLUS)
        for i in range(10):
            name = f"f{i}".encode()
            bucket = table.bucket_of(name)
            with bucket.lock:
                table.insert_locked(
                    table.freelist.alloc(name, i + 2, 1, 1, 1, None))
        snapshot = table.items()
        assert isinstance(snapshot, list)
        assert len(snapshot) == 10
        # The old generator held the read section open until exhausted; a
        # list snapshot leaves no read-side state behind, so grace periods
        # are never pinned by an abandoned readdir iterator.
        assert not table.rcu.in_read_section()
        table.rcu.synchronize()  # completes immediately — nothing pinned

    def test_seqcount_lookup_finds_entries(self):
        table = _table(ARCKFS_PLUS_ZC)
        for i in range(32):
            name = f"f{i}".encode()
            bucket = table.bucket_of(name)
            with bucket.lock:
                table.insert_locked(
                    table.freelist.alloc(name, i + 2, 1, 1, 1, None))
        for i in range(32):
            node = table.lookup(f"f{i}".encode())
            assert node is not None and node.ino == i + 2
        assert table.lookup(b"missing") is None
        assert table.lookup_retries == 0  # no writers were live
