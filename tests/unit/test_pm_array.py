"""PMArray: address routing, stats aggregation, delegation, crash images.

The array's contract is "a PMDevice, but striped": every test here pins one
facet of that — flat addresses route to the right member, a 1-member array
is indistinguishable from a device, scatter/gather match inline semantics
with and without worker threads, and the flat crash-line numbering feeds
the same enumeration the single-device crash story uses.
"""

import pytest

from repro import obs
from repro.errors import PersistOrderError
from repro.pm.array import PMArray, reboot_device
from repro.pm.delegation import DelegationPool
from repro.pm.device import CACHE_LINE, PMDevice

SIZE = 1 << 20  # 1 MiB arrays keep crash enumeration cheap


class TestRouting:
    def test_member_sizing(self):
        arr = PMArray(SIZE, devices=4)
        assert arr.device_count == 4
        assert arr.dev_size == SIZE // 4
        assert len(arr) == SIZE
        assert all(m.size == arr.dev_size for m in arr.members)

    def test_roundtrip_across_member_boundary(self):
        arr = PMArray(SIZE, devices=4, crash_tracking=False)
        addr = arr.dev_size - 100  # straddles members 0 and 1
        payload = bytes(range(200))
        arr.store(addr, payload)
        assert arr.load(addr, 200) == payload
        # The two members each saw their share.
        assert arr.members[0].load(arr.dev_size - 100, 100) == payload[:100]
        assert arr.members[1].load(0, 100) == payload[100:]

    def test_atomic_store_never_spans_members(self):
        arr = PMArray(SIZE, devices=2, crash_tracking=False)
        # Member boundaries are cache-line aligned, so any naturally
        # aligned 8-byte store lands in exactly one member.
        assert arr.dev_size % CACHE_LINE == 0
        arr.atomic_store(arr.dev_size, b"\x11" * 8)
        assert arr.members[1].load(0, 8) == b"\x11" * 8

    def test_out_of_range_raises(self):
        arr = PMArray(SIZE, devices=2, crash_tracking=False)
        with pytest.raises(PersistOrderError):
            arr.load(SIZE - 4, 8)

    def test_stats_aggregate_and_per_device(self):
        arr = PMArray(SIZE, devices=2, crash_tracking=False)
        arr.store(0, b"a" * 64)                  # member 0
        arr.store(arr.dev_size, b"b" * 64)       # member 1
        assert arr.stats.bytes_stored == 128
        per = arr.device_stats
        assert [s.bytes_stored for s in per] == [64, 64]

    def test_sfence_only_fences_dirty_members(self):
        arr = PMArray(SIZE, devices=4, crash_tracking=False)
        arr.ntstore(0, b"x" * 64)  # dirties member 0 only
        arr.sfence()
        assert [s.fences for s in arr.device_stats] == [1, 0, 0, 0]
        # An idle fence still charges member 0 (device parity).
        arr.sfence()
        assert [s.fences for s in arr.device_stats] == [2, 0, 0, 0]


class TestSingleMemberIdentity:
    OPS = (
        ("store", 0, b"hello" * 20),
        ("ntstore", 4096, b"\xaa" * 256),
        ("atomic", 8192, b"\x42" * 8),
    )

    def _drive(self, dev):
        for kind, addr, data in self.OPS:
            if kind == "store":
                dev.store(addr, data)
                dev.clwb(addr, len(data))
            elif kind == "ntstore":
                dev.ntstore(addr, data)
            else:
                dev.atomic_store(addr, data)
        dev.sfence()
        dev.store(64, b"volatile-tail")  # left unfenced deliberately

    def test_images_and_counters_match_flat_device(self):
        dev = PMDevice(SIZE)
        arr = PMArray(SIZE, devices=1)
        self._drive(dev)
        self._drive(arr)
        assert arr.durable_image() == dev.durable_image()
        assert arr.volatile_image() == dev.volatile_image()
        assert arr.stats == dev.stats
        assert arr.dirty_lines() == dev.dirty_lines()
        assert arr.line_choices() == dev.line_choices()


class TestDelegation:
    def _ops(self, arr):
        return [(d * arr.dev_size + 128, bytes([d]) * 4096)
                for d in range(arr.device_count)]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_scatter_gather_roundtrip(self, workers):
        arr = PMArray(SIZE, devices=4, crash_tracking=False,
                      delegation_workers=workers)
        ops = self._ops(arr)
        arr.ntstore_scatter(ops)
        arr.sfence()
        got = arr.load_gather([(addr, len(data)) for addr, data in ops])
        assert got == [data for _addr, data in ops]
        # Every member did its own I/O and its own fence.
        assert all(s.ntstores == 1 for s in arr.device_stats)
        assert all(s.fences == 1 for s in arr.device_stats)
        arr.close()

    def test_workers_match_inline_results(self):
        inline = PMArray(SIZE, devices=4, crash_tracking=False)
        pooled = PMArray(SIZE, devices=4, crash_tracking=False,
                         delegation_workers=2)
        for arr in (inline, pooled):
            arr.ntstore_scatter(self._ops(arr))
            arr.sfence()
        assert inline.media == pooled.media
        assert inline.stats == pooled.stats
        pooled.close()

    def test_spanning_gather_reassembles(self):
        arr = PMArray(SIZE, devices=2, crash_tracking=False)
        addr = arr.dev_size - 64
        arr.ntstore_scatter([(addr, b"L" * 64 + b"R" * 64)])
        arr.sfence()
        (got,) = arr.load_gather([(addr, 128)])
        assert got == b"L" * 64 + b"R" * 64

    def test_worker_exception_reraises_in_submitter(self):
        pool = DelegationPool(2, workers=1)
        with pytest.raises(RuntimeError, match="boom"):
            pool.run([(0, lambda: (_ for _ in ()).throw(RuntimeError("boom")))])
        pool.shutdown()

    def test_run_after_shutdown_is_inline(self):
        pool = DelegationPool(2, workers=1)
        pool.shutdown()
        hits = []
        pool.run([(0, lambda: hits.append(1)), (1, lambda: hits.append(2))])
        assert hits == [1, 2]


class TestCrashImages:
    def test_flat_line_numbering(self):
        arr = PMArray(SIZE, devices=2)
        arr.drain()
        arr.store(arr.dev_size + 64, b"y" * 64)  # member 1, local line 1
        lines = arr.dirty_lines()
        assert lines == [arr.dev_size // CACHE_LINE + 1]

    def test_crash_image_splits_choices_per_member(self):
        arr = PMArray(SIZE, devices=2)
        arr.drain()
        arr.store(0, b"a" * 64)                 # member 0
        arr.store(arr.dev_size, b"b" * 64)      # member 1
        choices = arr.line_choices()
        assert len(choices) == 2
        # Persist both lines' newest version: both writes visible.
        img = arr.crash_image({ln: n - 1 for ln, n in choices.items()})
        assert img[0:64] == b"a" * 64
        assert img[arr.dev_size:arr.dev_size + 64] == b"b" * 64
        # Persist neither: the old (zero) contents.
        img0 = arr.crash_image({ln: 0 for ln in choices})
        assert img0[0:64] == b"\0" * 64

    def test_enumerate_covers_product_of_members(self):
        arr = PMArray(SIZE, devices=2)
        arr.drain()
        arr.store(0, b"a" * 64)
        arr.store(arr.dev_size, b"b" * 64)
        images = list(arr.enumerate_crash_images())
        # Two dirty lines, two versions each -> four reachable states.
        assert len(images) == 4
        assert len({bytes(i) for i in images}) == 4

    def test_sample_is_deterministic(self):
        arr = PMArray(SIZE, devices=2)
        arr.store(0, b"a" * 64)
        a = [bytes(i) for i in arr.sample_crash_images(4, seed=7)]
        b = [bytes(i) for i in arr.sample_crash_images(4, seed=7)]
        assert a == b


class TestReboot:
    def test_from_image_roundtrip(self):
        arr = PMArray(SIZE, devices=4, stripe_pages=2, crash_tracking=False)
        arr.store(arr.dev_size * 2 + 5, b"payload")
        arr.drain()
        back = PMArray.from_image(arr.durable_image(), devices=4,
                                  stripe_pages=2)
        assert back.load(arr.dev_size * 2 + 5, 7) == b"payload"

    def test_reboot_device_without_superblock_is_flat(self):
        dev = reboot_device(b"\0" * SIZE)
        assert isinstance(dev, PMDevice)

    def test_reboot_device_reads_superblock_shape(self):
        from repro.core.mkfs import mkfs

        arr = PMArray(8 << 20, devices=2, stripe_pages=4, crash_tracking=False)
        mkfs(arr, 64)
        back = reboot_device(arr.durable_image())
        assert isinstance(back, PMArray)
        assert back.device_count == 2
        assert back.stripe_pages == 4
        assert back.media == arr.media


class TestObsLabels:
    def test_persist_calls_labelled_per_device_and_rolled_up(self):
        obs.reset()
        obs.enable(trace=False)
        try:
            arr = PMArray(SIZE, devices=2, crash_tracking=False)
            arr.ntstore(0, b"x" * 64)
            arr.sfence()                      # member 0
            arr.ntstore(arr.dev_size, b"y" * 64)
            arr.sfence()                      # member 1
            snap = obs.metrics.snapshot()
        finally:
            obs.disable()
            obs.reset()
        counters = snap["counters"]
        assert counters["pm.persist_calls{device=0}"] == 1
        assert counters["pm.persist_calls{device=1}"] == 1
        # The base name aggregates the labeled series.
        assert counters["pm.persist_calls"] == 2

    def test_publish_stats_accepts_labels(self):
        obs.reset()
        arr = PMArray(SIZE, devices=2, crash_tracking=False)
        arr.store(0, b"z" * 64)
        for d, stats in enumerate(arr.device_stats):
            obs.publish_stats("pm.member", stats, device=d)
        snap = obs.metrics.snapshot()
        counters = snap["counters"]
        assert counters["pm.member.bytes_stored{device=0}"] == 64
        assert counters["pm.member.bytes_stored"] == 64
        obs.reset()
