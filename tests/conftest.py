"""Shared fixtures: failpoint/observability hygiene and common FS factories."""

import pytest

from repro import obs
from repro.concurrency.failpoints import failpoints
from repro.core.config import ARCKFS, ARCKFS_PLUS
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice


@pytest.fixture(autouse=True)
def clean_failpoints():
    """Failpoints are process-global; never leak hooks between tests."""
    failpoints.clear()
    yield
    failpoints.clear()


@pytest.fixture(autouse=True)
def clean_obs():
    """Observability is process-global too; tests start disabled and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def build_fs(config=ARCKFS_PLUS, size=16 * 1024 * 1024, inode_count=256, uid=1000):
    device = PMDevice(size)
    kernel = KernelController.fresh(device, inode_count=inode_count, config=config)
    fs = LibFS(kernel, "app1", uid=uid, config=config)
    return device, kernel, fs


@pytest.fixture
def fsx():
    """(device, kernel, fs) triple under full ArckFS+."""
    return build_fs(ARCKFS_PLUS)


@pytest.fixture
def fs(fsx):
    return fsx[2]


@pytest.fixture
def buggy_fsx():
    """(device, kernel, fs) triple under unpatched ArckFS."""
    return build_fs(ARCKFS)
