"""Threaded stress tests for the zero-crossing read path.

Lookups race removes/inserts/rebuilds under both read-side modes
(``rcu_buckets`` and ``seqcount_buckets``): stable entries must always be
found, nothing may fault, and deferred frees must drain after a barrier.
The seqlock file-read path is stressed for read *consistency*: a validated
``pread`` must never return a mix of two overlapping writes.
"""

import sys
import threading

import pytest

from repro.concurrency.rcu import RCU
from repro.core.config import ARCKFS_PLUS, ARCKFS_PLUS_ZC
from repro.kernel.controller import KernelController
from repro.libfs.hashtable import DirHashTable, NodeFreelist
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice

CONFIGS = [ARCKFS_PLUS, ARCKFS_PLUS_ZC]


def _table(config):
    return DirHashTable(config, RCU("stress.rcu"), NodeFreelist(), tag="t")


def _insert(table, name, ino):
    bucket = table.bucket_of(name)
    with bucket.lock:
        table.insert_locked(table.freelist.alloc(name, ino, 1, 1, 1, None))


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
class TestLookupVsChurn:
    def test_stable_keys_survive_remove_insert_churn(self, config):
        table = _table(config)
        stable = [f"stable{i}".encode() for i in range(16)]
        churn = [f"churn{i}".encode() for i in range(16)]
        for i, name in enumerate(stable):
            _insert(table, name, 100 + i)
        stop = threading.Event()
        errors = []

        def churner():
            try:
                while not stop.is_set():
                    for i, name in enumerate(churn):
                        _insert(table, name, 200 + i)
                    for name in churn:
                        bucket = table.bucket_of(name)
                        with bucket.lock:
                            table.remove_locked(name)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for r in range(3000):
                    name = stable[r % len(stable)]
                    node = table.lookup(name)
                    assert node is not None, f"lost stable entry {name!r}"
                    assert node.ino == 100 + (r % len(stable))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=churner)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads[1:]:
                t.start()
            threads[0].start()
            for t in threads[1:]:
                t.join()
            stop.set()
            threads[0].join()
        finally:
            sys.setswitchinterval(old)
        assert not errors, errors[0]
        # Deferred frees ride grace periods in both modes and fully drain.
        table.rcu.barrier()
        assert table.rcu.pending_callbacks() == 0
        assert table.count == len(stable)

    def test_rebuild_never_causes_spurious_miss(self, config):
        """A reader overlapping ``rebuild`` must see the old or the new
        chain, never the in-between (the per-bucket atomic swap)."""
        table = _table(config)
        entries = {
            f"stable{i}".encode(): (100 + i, 1, 1, 1, None) for i in range(24)
        }
        table.rebuild(entries)
        stop = threading.Event()
        errors = []

        def rebuilder():
            try:
                while not stop.is_set():
                    table.rebuild(entries)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for r in range(2000):
                    name = f"stable{r % 24}".encode()
                    node = table.lookup(name)
                    assert node is not None, f"spurious miss on {name!r}"
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=rebuilder)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads[1:]:
                t.start()
            threads[0].start()
            for t in threads[1:]:
                t.join()
            stop.set()
            threads[0].join()
        finally:
            sys.setswitchinterval(old)
        assert not errors, errors[0]
        table.rcu.barrier()
        assert table.rcu.pending_callbacks() == 0


class TestOptimisticPread:
    def test_validated_read_is_never_torn(self):
        """Concurrent whole-file preads against alternating whole-file
        pwrites: every returned buffer is one write's image, never a mix."""
        config = ARCKFS_PLUS_ZC
        device = PMDevice(32 * 1024 * 1024)
        kernel = KernelController.fresh(device, inode_count=64, config=config)
        fs = LibFS(kernel, "app", uid=1000, config=config)
        size = 8192
        fd = fs.open("/f", create=True)
        fs.pwrite(fd, b"A" * size, 0)
        patterns = (b"A" * size, b"B" * size)
        stop = threading.Event()
        errors = []

        def writer():
            try:
                i = 0
                while not stop.is_set():
                    fs.pwrite(fd, patterns[i % 2], 0)
                    i += 1
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                rfd = fs.open("/f")
                for _ in range(400):
                    out = fs.pread(rfd, size, 0)
                    assert out in patterns, "torn read escaped validation"
                fs.close(rfd)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads[1:]:
                t.start()
            threads[0].start()
            for t in threads[1:]:
                t.join()
            stop.set()
            threads[0].join()
        finally:
            sys.setswitchinterval(old)
        assert not errors, errors[0]
        # The folded per-thread stats are exact after quiescence.
        assert fs.stats.reads == 2 * 400 + 0
        fs.shutdown()

    def test_release_reattach_under_optimistic_readers(self):
        """Voluntary release concurrent with optimistic preads: readers
        either validate against the old mapping or fault, retry and
        re-attach — no SimulatedBusError escapes."""
        config = ARCKFS_PLUS_ZC
        device = PMDevice(32 * 1024 * 1024)
        kernel = KernelController.fresh(device, inode_count=64, config=config)
        fs = LibFS(kernel, "app", uid=1000, config=config)
        payload = b"payload!" * 512
        fs.write_file("/f", payload)
        # Verify the root in place so releasing /f passes the connectivity
        # check (Rule (1): a child's release verifies against its parent).
        fs.commit_path("/")
        ino = fs.stat("/f").ino
        stop = threading.Event()
        errors = []

        def releaser():
            try:
                while not stop.is_set():
                    fs.release_ino(ino)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                rfd = fs.open("/f")
                for _ in range(300):
                    out = fs.pread(rfd, len(payload), 0)
                    assert out == payload
                fs.close(rfd)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=releaser)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            for t in threads[1:]:
                t.start()
            threads[0].start()
            for t in threads[1:]:
                t.join()
            stop.set()
            threads[0].join()
        finally:
            sys.setswitchinterval(old)
        assert not errors, errors[0]
        fs.shutdown()
