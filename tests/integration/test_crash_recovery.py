"""Crash-consistency: every reachable crash state recovers to a consistent
file system, and committed operations are never lost.

Uses the failpoint-crash + crash-state-enumeration machinery: a CrashPoint
is raised at an interesting instant, every reachable persisted image is
rebooted, and invariants are checked on each.
"""

import pytest

from repro.concurrency.failpoints import failpoints
from repro.core.config import ARCKFS_PLUS
from repro.errors import CrashPoint
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice
from tests.conftest import build_fs


def remount(image):
    kernel = KernelController.mount(PMDevice.from_image(image))
    fs = LibFS(kernel, "recovered", uid=1000)
    return kernel, fs


def all_recoveries(device, limit=8192):
    for image in device.enumerate_crash_images(limit=limit):
        yield remount(image)


class TestDurabilityOfCompletedOps:
    """Synchronous persistence: once an op returns, it survives any crash."""

    def test_create_durable_after_return(self):
        device, _kc, fs = build_fs()
        fs.close(fs.creat("/f"))
        # No drain: the operation itself must have persisted everything.
        for kernel, rfs in all_recoveries(device):
            assert rfs.exists("/f")
            assert kernel.last_recovery.clean

    def test_write_durable_after_return(self):
        device, _kc, fs = build_fs()
        fd = fs.creat("/f")
        fs.pwrite(fd, b"committed-data", 0)
        for _kernel, rfs in all_recoveries(device):
            rfd = rfs.open("/f")
            assert rfs.pread(rfd, 100, 0) == b"committed-data"

    def test_unlink_durable_after_return(self):
        device, _kc, fs = build_fs()
        fs.close(fs.creat("/f"))
        fs.unlink("/f")
        for _kernel, rfs in all_recoveries(device):
            assert not rfs.exists("/f")

    def test_mkdir_chain_durable(self):
        device, _kc, fs = build_fs()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.close(fs.creat("/a/b/f"))
        for _kernel, rfs in all_recoveries(device):
            assert rfs.readdir("/a/b") == ["f"]

    def test_rename_durable_after_return(self):
        device, _kc, fs = build_fs()
        fs.mkdir("/d")
        fs.close(fs.creat("/old"))
        fs.rename("/old", "/d/new")
        for _kernel, rfs in all_recoveries(device):
            assert rfs.exists("/d/new")
            assert not rfs.exists("/old")


class TestCrashMidOperation:
    def _crash_at(self, point, op, config=ARCKFS_PLUS, setup=None):
        device, _kc, fs = build_fs(config)
        if setup:
            setup(fs)

        def crash(_ctx):
            raise CrashPoint(point)

        failpoints.install(point, crash)
        try:
            with pytest.raises(CrashPoint):
                op(fs)
        finally:
            failpoints.remove(point)
        return device

    def test_crash_mid_create_atomic(self):
        """Crash before the final fence: the file either exists completely
        or not at all — never a torn dentry (ArckFS+ fence)."""
        device = self._crash_at(
            "create.post_marker", lambda fs: fs.creat("/the-new-file-with-long-name")
        )
        outcomes = set()
        for kernel, rfs in all_recoveries(device):
            assert kernel.last_recovery.torn_dentries == []
            names = rfs.readdir("/")
            assert names in ([], ["the-new-file-with-long-name"])
            outcomes.add(tuple(names))
        assert len(outcomes) == 2  # both outcomes genuinely reachable

    def test_crash_mid_rename_old_or_new(self):
        """Crash between the new-dentry append and the old tombstone: the
        file is visible under exactly one of the two names."""
        def op(fs):
            fs.rename("/old", "/d/new")

        def setup(fs):
            fs.mkdir("/d")
            fd = fs.creat("/old")
            fs.pwrite(fd, b"X", 0)
            fs.close(fd)

        device = self._crash_at("dir.write_mid", op, setup=setup)
        # dir.write_mid fires inside the new-parent append (first dentry
        # write of the rename), i.e. before the new entry is committed.
        for _kernel, rfs in all_recoveries(device):
            old_there = rfs.exists("/old")
            new_there = rfs.exists("/d/new")
            assert old_there or new_there  # never lost
            # (both-visible is impossible this early; tolerate it anyway)

    def test_crash_mid_unlink(self):
        def setup(fs):
            fs.close(fs.creat("/f"))

        device = self._crash_at("dir.write_mid", lambda fs: fs.unlink("/f"),
                                setup=setup)
        for kernel, rfs in all_recoveries(device):
            # Crash before the tombstone: the file must still exist.
            assert rfs.exists("/f")
            assert kernel.last_recovery.clean


class TestRecoveryHousekeeping:
    def test_leaked_pages_reclaimed(self):
        """Pages allocated but never linked (crash mid-write) are reclaimed."""
        device, kernel, fs = build_fs()
        fd = fs.creat("/f")
        fs.pwrite(fd, b"x" * 4096, 0)
        device.drain()
        # Simulate a crash that persisted an allocation but no link: set a
        # bitmap bit directly.
        leaked = kernel.alloc.alloc()
        device.drain()
        kernel2, _fs2 = remount(device.durable_image())
        assert kernel2.last_recovery.pages_reclaimed >= 1
        assert not kernel2.alloc.is_allocated(leaked)

    def test_orphan_inodes_reclaimed(self):
        """Inode records valid but unreachable from the root are wiped."""
        device, kernel, fs = build_fs()
        # Write a valid-looking inode record into a free slot, bypassing
        # the FS (as a crashed half-creation would leave).
        from repro.core.corestate import CoreState
        from repro.pm.layout import INODE_MAGIC, ITYPE_FILE, InodeRecord, NTAILS

        cs = CoreState(device, kernel.geom)
        rec = InodeRecord(INODE_MAGIC, ITYPE_FILE, 0o644, 0, 7, 0, 1, 0, 0, [0] * NTAILS)
        cs.write_inode(42, rec)
        device.drain()
        kernel2, _fs2 = remount(device.durable_image())
        assert 42 in kernel2.last_recovery.orphan_inodes
        assert not kernel2.core.read_inode(42).valid

    def test_duplicate_dentries_resolved_by_seq(self):
        """A crashed rename can leave the child under both parents; the
        higher-seq dentry wins deterministically."""
        device, _kc, fs = build_fs()
        fs.mkdir("/d")
        fs.close(fs.creat("/old"))

        def crash(_ctx):
            # Crash inside the rename's new-dentry append (the marker is
            # flushed, the old dentry not yet tombstoned).
            raise CrashPoint("post-append, pre-tombstone")

        failpoints.install("create.post_marker", crash)
        try:
            with pytest.raises(CrashPoint):
                fs.rename("/old", "/d/new")
        finally:
            failpoints.remove("create.post_marker")
        # The marker of the new dentry was flushed; there exists a crash
        # image where both dentries are live.
        both_seen = False
        for kernel, rfs in all_recoveries(device):
            old_there = rfs.exists("/old")
            new_there = rfs.exists("/d/new")
            assert old_there or new_there
            if old_there and new_there:
                both_seen = True
            assert kernel.audit_tree() == []
        # With duplicate resolution, even a both-live image mounts with the
        # child under exactly one parent in the shadow table.
        if both_seen:
            image = device.volatile_image()
            kernel, rfs = remount(image)
            assert kernel.last_recovery.duplicates_dropped >= 0

    def test_remount_idempotent(self):
        device, _kc, fs = build_fs()
        fs.mkdir("/a")
        for i in range(10):
            fs.close(fs.creat(f"/a/f{i}"))
        device.drain()
        img = device.durable_image()
        k1, fs1 = remount(img)
        k2, fs2 = remount(img)
        assert sorted(k1.shadow) == sorted(k2.shadow)
        assert fs1.readdir("/a") == fs2.readdir("/a")
