"""One behavioural battery, every file system.

Workloads and the KV store run against the common FileSystem interface, so
every implementation — the seven baselines and both ArckFS variants — must
agree on this behavioural core.
"""

import pytest

from repro.basefs import make_baseline
from repro.core.config import ARCKFS, ARCKFS_PLUS
from repro.errors import Exists, IsADir, NoEntry, NotADir, NotEmpty
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice

BASELINES = ["ext4", "pmfs", "winefs", "nova", "odinfs", "splitfs", "strata"]
ALL = BASELINES + ["arckfs", "arckfs+"]


def make_fs(name: str):
    if name in ("arckfs", "arckfs+"):
        config = ARCKFS_PLUS if name == "arckfs+" else ARCKFS
        device = PMDevice(32 * 1024 * 1024, crash_tracking=False)
        kernel = KernelController.fresh(device, inode_count=512, config=config)
        return LibFS(kernel, "app", uid=0, config=config)
    return make_baseline(name, PMDevice(32 * 1024 * 1024, crash_tracking=False))


@pytest.fixture(params=ALL)
def anyfs(request):
    return make_fs(request.param)


class TestConformance:
    def test_write_read_roundtrip(self, anyfs):
        fd = anyfs.creat("/f")
        payload = bytes(i % 256 for i in range(10000))
        assert anyfs.pwrite(fd, payload, 0) == len(payload)
        assert anyfs.pread(fd, len(payload), 0) == payload
        anyfs.close(fd)

    def test_overwrite_and_size(self, anyfs):
        fd = anyfs.creat("/f")
        anyfs.pwrite(fd, b"aaaa", 0)
        anyfs.pwrite(fd, b"BB", 1)
        assert anyfs.pread(fd, 10, 0) == b"aBBa"
        assert anyfs.stat("/f").size == 4
        anyfs.close(fd)

    def test_namespace_ops(self, anyfs):
        anyfs.mkdir("/d")
        anyfs.mkdir("/d/e")
        anyfs.close(anyfs.creat("/d/f1"))
        anyfs.close(anyfs.creat("/d/f2"))
        assert anyfs.readdir("/d") == ["e", "f1", "f2"]
        anyfs.unlink("/d/f1")
        assert anyfs.readdir("/d") == ["e", "f2"]
        anyfs.rmdir("/d/e")
        assert anyfs.readdir("/d") == ["f2"]

    def test_errors(self, anyfs):
        with pytest.raises(NoEntry):
            anyfs.open("/missing")
        anyfs.close(anyfs.creat("/f"))
        with pytest.raises(Exists):
            anyfs.creat("/f")
        with pytest.raises(NotADir):
            anyfs.stat("/f/sub")
        anyfs.mkdir("/d")
        with pytest.raises(IsADir):
            anyfs.unlink("/d")
        anyfs.close(anyfs.creat("/d/x"))
        with pytest.raises(NotEmpty):
            anyfs.rmdir("/d")

    def test_rename_file(self, anyfs):
        anyfs.write_file("/a", b"data")
        anyfs.mkdir("/d")
        anyfs.rename("/a", "/d/b")
        assert not anyfs.exists("/a")
        assert anyfs.read_file("/d/b") == b"data"

    def test_rename_directory(self, anyfs):
        anyfs.mkdir("/src")
        anyfs.mkdir("/src/sub")
        anyfs.close(anyfs.creat("/src/sub/f"))
        anyfs.mkdir("/dst")
        anyfs.rename("/src/sub", "/dst/sub")
        assert anyfs.readdir("/dst/sub") == ["f"]
        assert anyfs.readdir("/src") == []

    def test_truncate(self, anyfs):
        anyfs.write_file("/f", b"x" * 9000)
        anyfs.truncate("/f", 4096)
        assert anyfs.stat("/f").size == 4096
        assert anyfs.read_file("/f") == b"x" * 4096

    def test_fsync_then_visible(self, anyfs):
        fd = anyfs.open("/f", create=True)
        anyfs.pwrite(fd, b"persisted", 0)
        anyfs.fsync(fd)
        anyfs.close(fd)
        assert anyfs.read_file("/f") == b"persisted"

    def test_many_files(self, anyfs):
        anyfs.mkdir("/many")
        for i in range(64):
            anyfs.write_file(f"/many/f{i:02d}", bytes([i]))
        assert len(anyfs.readdir("/many")) == 64
        for i in range(0, 64, 2):
            anyfs.unlink(f"/many/f{i:02d}")
        assert len(anyfs.readdir("/many")) == 32
        assert anyfs.read_file("/many/f33") == bytes([33])

    def test_deep_paths(self, anyfs):
        anyfs.makedirs("/a/b/c/d/e")
        anyfs.write_file("/a/b/c/d/e/leaf", b"deep")
        assert anyfs.read_file("/a/b/c/d/e/leaf") == b"deep"
        assert anyfs.stat("/a/b/c").is_dir


class TestBaselineSpecific:
    def test_ext4_journals_metadata(self):
        fs = make_fs("ext4")
        fs.mkdir("/d")
        fs.close(fs.creat("/d/f"))
        assert fs.stats.journal_commits >= 2
        assert fs.stats.journal_bytes > 0

    def test_ext4_journal_replay(self):
        from repro.basefs.ext4 import Journal

        device = PMDevice(1024 * 1024, crash_tracking=False)
        j = Journal(device, 512 * 1024, 256 * 1024)
        j.commit([(100, b"hello"), (300, b"world")])
        # Pretend the in-place checkpoint never happened; replay applies it.
        fresh = PMDevice.from_image(device.durable_image(), crash_tracking=False)
        j2 = Journal(fresh, 512 * 1024, 256 * 1024)
        assert j2.replay() == 1
        assert fresh.load(100, 5) == b"hello"
        assert fresh.load(300, 5) == b"world"

    def test_nova_keeps_per_inode_log(self):
        fs = make_fs("nova")
        fs.mkdir("/d")
        fs.close(fs.creat("/d/f"))
        fs.unlink("/d/f")
        dir_ino = fs.stat("/d").ino
        log = fs.replay_log(dir_ino)
        kinds = [k for k, *_ in log]
        assert kinds == [1, 2]  # create then unlink
        assert log[0][2] == b"f"

    def test_odinfs_delegates_large_writes(self):
        fs = make_fs("odinfs")
        fd = fs.creat("/big")
        fs.pwrite(fd, b"z" * (64 * 1024), 0)
        fs.close(fd)
        assert fs.pool.delegated > 0
        assert fs.read_file("/big") == b"z" * (64 * 1024)

    def test_splitfs_data_path_avoids_syscalls(self):
        fs = make_fs("splitfs")
        fd = fs.creat("/f")
        sys0 = fs.kernel_fs.stats.syscalls
        for i in range(10):
            fs.pwrite(fd, b"x" * 100, i * 100)
        assert fs.kernel_fs.stats.syscalls == sys0  # staged in userspace
        fs.fsync(fd)  # the relink goes through the kernel
        assert fs.kernel_fs.stats.syscalls > sys0
        assert fs.relinks == 10

    def test_splitfs_read_sees_staged_data(self):
        fs = make_fs("splitfs")
        fd = fs.creat("/f")
        fs.pwrite(fd, b"staged", 0)
        assert fs.pread(fd, 10, 0) == b"staged"  # before any fsync

    def test_strata_verifies_each_digested_op(self):
        fs = make_fs("strata")
        fs.mkdir("/d")
        for i in range(5):
            fs.close(fs.creat(f"/d/f{i}"))
        assert fs.verified_ops >= 6
        assert fs.digested_records >= 6

    def test_strata_batches_data_writes(self):
        fs = make_fs("strata")
        fd = fs.creat("/f")
        for i in range(10):
            fs.pwrite(fd, b"a" * 10, i * 10)
        # Writes sit in the user log until digest/fsync.
        assert len(fs._log) == 10
        fs.fsync(fd)
        assert len(fs._log) == 0
        assert fs.pread(fd, 100, 0) == b"a" * 100

    def test_pmfs_undo_logs_old_values(self):
        fs = make_fs("pmfs")
        fs.mkdir("/d")
        # The undo area received records (head moved).
        assert fs._undo_head > fs._undo_start
