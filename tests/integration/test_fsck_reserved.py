"""Pool reservations through the crash / fsck / recovery lens.

The leak-only story of the pooled allocator: a refill persists the bitmap
bits and the per-page reservation tags under one fence, so the *worst* a
crash can do is strand reserved pages.  fsck classifies intact
reservations as advisory ``page-reserved`` (a live volume with warm pools
is legal), ``--repair`` reclaims them, mount-time recovery reclaims them,
and no enumerated crash state can ever double-allocate.
"""

from repro.bugs.harness import make_fs
from repro.core.config import ARCKFS_PLUS
from repro.core.mkfs import mkfs
from repro.fsck import F_PAGE_LEAK, F_PAGE_RESERVED, run_fsck
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.allocator import PageAllocator
from repro.pm.crash import CrashSim
from repro.pm.device import PMDevice


def warm_volume():
    """A populated volume whose pools are deliberately left warm."""
    device, kernel, fs = make_fs(ARCKFS_PLUS)
    fs.mkdir("/d")
    for i in range(4):
        fs.write_file(f"/d/f{i}", b"payload-%d" % i)
    reserved = kernel.alloc.pooled_pages()
    assert reserved  # write_file refills ran; nothing drained them
    return device, kernel, fs, reserved


def test_live_volume_with_warm_pools_is_advisory_clean():
    device, kernel, _fs, reserved = warm_volume()
    report = run_fsck(device)
    assert report.clean, report.summary()
    assert report.classes() == [F_PAGE_RESERVED]
    assert {f.page for f in report.findings} == reserved
    assert all(f.advisory and f.repairable for f in report.findings)


def test_crash_image_reserved_pages_repaired():
    device, _kernel, _fs, reserved = warm_volume()
    # Crash: the durable media is all the next boot sees.
    dev2 = PMDevice.from_image(device.durable_image())

    report = run_fsck(dev2)
    assert {f.page for f in report.by_class(F_PAGE_RESERVED)} == reserved

    repaired = run_fsck(dev2, repair=True)
    assert repaired.repairs.get(F_PAGE_RESERVED) == len(reserved)
    assert repaired.findings == []  # not even advisory ones remain

    # The reclaimed pages are genuinely free again.
    alloc = PageAllocator(dev2, _kernel.geom, pool_pages=0)
    for page_no in reserved:
        assert not alloc.is_allocated(page_no)


def test_mount_recovery_reclaims_reserved_pages():
    device, _kernel, _fs, reserved = warm_volume()
    dev2 = PMDevice.from_image(device.durable_image())

    kernel2 = KernelController.mount(dev2, config=ARCKFS_PLUS)
    assert kernel2.last_recovery.pages_reclaimed >= len(reserved)
    for page_no in reserved:
        assert not kernel2.alloc.is_allocated(page_no)
    # The volume is fully clean after recovery — no advisory residue.
    assert run_fsck(dev2).findings == []

    # Committed data survived the crash untouched.
    fs2 = LibFS(kernel2, "app2", uid=1000, config=ARCKFS_PLUS)
    for i in range(4):
        fd = fs2.open(f"/d/f{i}")
        assert fs2.pread(fd, 64, 0) == b"payload-%d" % i

    # Fresh allocations reuse the reclaimed pages without ever colliding
    # with a page an inode still claims.
    claimed = set(kernel2.page_owner)
    fresh = kernel2.alloc.alloc_many(len(reserved), zero=False)
    assert not set(fresh) & claimed


def test_no_enumerated_crash_state_double_allocates():
    """Every crash image reachable around a pool refill repairs to a fully
    clean volume; reservations surface as ``page-reserved`` when the tag
    persisted with the bit, ``page-leak`` when it tore — never anything
    worse, and repair converges either way."""
    device = PMDevice(2 * 1024 * 1024, crash_tracking=True)
    geom = mkfs(device, inode_count=64)
    alloc = PageAllocator(device, geom, pool_pages=8)
    alloc.alloc(zero=False)  # one refill: bits + tags under one fence

    seen_classes = set()

    def checker(rebooted):
        report = run_fsck(rebooted, repair=True)
        assert report.findings == [], report.summary()
        for cls in report.repairs:
            assert cls in (F_PAGE_RESERVED, F_PAGE_LEAK), report.repairs
            seen_classes.add(cls)
        # No double-allocation possible: after repair every allocated bit
        # is claimed by exactly one inode (that is what clean means), so a
        # subsequent first-fit allocation cannot collide.
        return None

    CrashSim(device, limit=512).check_all(checker)
    assert seen_classes  # the sweep actually exercised reserved/leaked pages
