"""fsck as the arbiter for the six Table-1 bugs.

Each test triggers one paper bug the same way the ``repro.bugs`` modules
do, then runs the whole-volume checker: under unpatched ArckFS the bug's
on-PM fingerprint (or DRAM-vs-PM divergence) must be detected — and, where
the damage is durable, ``repair=True`` must converge back to a provably
clean volume; under ArckFS+ the same interleaving must leave nothing for
fsck to find.
"""

import pytest

from repro.bugs.bug_bucket import colliding_names
from repro.bugs.bug_fence import _crash_at_marker
from repro.bugs.harness import make_fs, race
from repro.core.config import ARCKFS, ARCKFS_PLUS
from repro.errors import CorruptionDetected, SimulatedBusError, SimulatedSegfault
from repro.fsck import (
    TORN_CLASSES,
    F_AUX_MISMATCH,
    F_DIR_CYCLE,
    F_DUPLICATE_DENTRY,
    F_ORPHAN_INODE,
    check_node_ref,
    fsck_checker,
    run_fsck,
)
from repro.pm.crash import CrashSim


# --------------------------------------------------------------------------- #
# §4.1 — cross-directory rename failure → duplicate dentry after rollback
# --------------------------------------------------------------------------- #


def _rename_and_release(config):
    device, _kernel, fs = make_fs(config)
    fs.mkdir("/dir1")
    fs.mkdir("/dir1/dir3")
    fs.close(fs.creat("/dir1/dir3/file1"))
    fs.mkdir("/dir2")
    fs.release_all()
    fs.rename("/dir1/dir3", "/dir2/dir3")
    rejected = False
    for path in ("/dir2", "/dir1"):
        try:
            fs.release_path(path)
        except CorruptionDetected:
            rejected = True
    return device, rejected


def test_41_rollback_leaves_duplicate_dentry_arckfs():
    device, rejected = _rename_and_release(ARCKFS)
    assert rejected  # the legitimate relocation was refused and rolled back
    report = run_fsck(device)
    assert F_DUPLICATE_DENTRY in report.classes(), report.summary()
    repaired = run_fsck(device, repair=True)
    assert repaired.clean and F_DUPLICATE_DENTRY in repaired.repairs


def test_41_clean_under_arckfs_plus():
    device, rejected = _rename_and_release(ARCKFS_PLUS)
    assert not rejected
    assert run_fsck(device).clean


# --------------------------------------------------------------------------- #
# §4.2 — missing fence → torn/dangling dentry in some crash state
# --------------------------------------------------------------------------- #


def test_42_crash_enumeration_finds_torn_state_arckfs():
    device = _crash_at_marker(ARCKFS)
    sim = CrashSim(device, limit=16384)
    hit = sim.find_violation(fsck_checker(classes=TORN_CLASSES))
    assert hit is not None
    _image, reason = hit
    assert any(cls in reason for cls in TORN_CLASSES)


def test_42_no_torn_state_under_arckfs_plus():
    device = _crash_at_marker(ARCKFS_PLUS)
    sim = CrashSim(device, limit=16384)
    assert sim.find_fsck_violation(TORN_CLASSES) is None


@pytest.mark.parametrize("config", [ARCKFS, ARCKFS_PLUS], ids=lambda c: c.name)
def test_42_every_crash_state_is_repairable(config):
    # Even the torn states of the unpatched protocol are *repairable*:
    # fsck truncates the torn suffix and quarantines the half-created
    # inode, so no reachable crash state is beyond recovery.
    device = _crash_at_marker(config)
    sim = CrashSim(device, limit=16384)
    assert sim.find_fsck_violation(repair=True) is None


# --------------------------------------------------------------------------- #
# §4.3 — release unmaps under a mid-creat writer → orphan inode record
# --------------------------------------------------------------------------- #


def _release_under_creat(config):
    device, _kernel, fs = make_fs(config)
    fs.mkdir("/dir")
    fs.commit_path("/")
    fs.commit_path("/dir")
    exc1, exc2 = race(
        first=lambda: fs.creat("/dir/x"),
        second=lambda: fs.release_path("/dir"),
        parkpoint="creat.pre_core_append",
    )
    return device, exc1, exc2


def test_43_release_under_creat_orphans_inode_arckfs():
    device, exc1, _exc2 = _release_under_creat(ARCKFS)
    assert isinstance(exc1, SimulatedBusError)  # the writer "crashed"
    report = run_fsck(device)
    # The child's inode record persisted before the parent vanished under
    # the writer; no dentry ever did — a lost creat.
    assert F_ORPHAN_INODE in report.classes(), report.summary()
    repaired = run_fsck(device, repair=True)
    assert repaired.clean and F_ORPHAN_INODE in repaired.repairs


def test_43_locked_release_waits_under_arckfs_plus():
    device, exc1, exc2 = _release_under_creat(ARCKFS_PLUS)
    assert exc1 is None and exc2 is None
    assert run_fsck(device).clean


# --------------------------------------------------------------------------- #
# §4.4 — aux updated before core append → DRAM/PM divergence
# --------------------------------------------------------------------------- #


def _creat_vs_unlink(config):
    device, _kernel, fs = make_fs(config)
    fs.mkdir("/dir")
    exc1, exc2 = race(
        first=lambda: fs.creat("/dir/x"),
        second=lambda: fs.unlink("/dir/x"),
        parkpoint="creat.pre_core_append",
    )
    return device, fs, exc1, exc2


def test_44_aux_core_divergence_detected_arckfs():
    device, fs, _exc1, exc2 = _creat_vs_unlink(ARCKFS)
    assert isinstance(exc2, SimulatedSegfault)
    report = run_fsck(device, libfs=fs)
    aux = report.by_class(F_AUX_MISMATCH)
    # The unlink removed the aux entry before faulting; the resumed creat
    # still appended the committed dentry to PM — core-only divergence.
    assert aux, report.summary()
    assert all(not f.repairable for f in aux)
    # The durable volume itself is consistent; only DRAM diverged.
    assert run_fsck(device).clean


def test_44_extended_bucket_lock_keeps_states_agreeing():
    device, fs, exc1, exc2 = _creat_vs_unlink(ARCKFS_PLUS)
    assert exc1 is None and not isinstance(exc2, SimulatedSegfault)
    assert run_fsck(device, libfs=fs).clean


# --------------------------------------------------------------------------- #
# §4.5 — bucket traversal use-after-free → reader-held hazard, volume clean
# --------------------------------------------------------------------------- #


def _reader_uaf(config):
    device, _kernel, fs = make_fs(config)
    fs.mkdir("/dir")
    target, victim = colliding_names(fs, "/dir")
    fs.close(fs.creat(f"/dir/{target}"))
    fs.close(fs.creat(f"/dir/{victim}"))
    node = fs._resolve_dir("/dir").dir.lookup(victim.encode())
    exc1, _exc2 = race(
        first=lambda: fs.stat(f"/dir/{target}"),
        second=lambda: fs.unlink(f"/dir/{victim}"),
        parkpoint="dir.bucket_traverse",
        predicate=lambda n: getattr(n, "name", None) == victim.encode(),
    )
    return device, fs, node, exc1


def test_45_reader_held_node_hazard_arckfs():
    device, _fs, node, exc1 = _reader_uaf(ARCKFS)
    assert isinstance(exc1, SimulatedSegfault)
    hazard = check_node_ref(node)
    assert hazard and hazard[0].cls == F_AUX_MISMATCH
    assert not hazard[0].repairable
    # Availability bug only: durable core state never had a problem.
    assert run_fsck(device).clean


def test_45_rcu_grace_period_protects_reader_arckfs_plus():
    device, fs, node, exc1 = _reader_uaf(ARCKFS_PLUS)
    assert exc1 is None
    # The free is deferred, so the reader-held reference stays sound...
    assert check_node_ref(node) == []
    # ...until the grace period expires, with no reader left to care.
    fs.quiesce()
    assert run_fsck(device).clean


# --------------------------------------------------------------------------- #
# §4.6 — concurrent cross renames → directory cycle
# --------------------------------------------------------------------------- #


def _cross_renames(config):
    device, _kernel, fs = make_fs(config)
    for path in ("/a", "/a/b", "/c", "/c/d"):
        fs.mkdir(path)
    race(
        first=lambda: fs.rename("/c", "/a/b/c2"),
        second=lambda: fs.rename("/a", "/c/d/a2"),
        parkpoint="rename.pre_apply",
    )
    return device


def test_46_concurrent_renames_create_cycle_arckfs():
    device = _cross_renames(ARCKFS)
    report = run_fsck(device)
    assert F_DIR_CYCLE in report.classes(), report.summary()
    # Repair cuts the cycle, which exposes the detached subtree as an
    # orphan root to quarantine — multi-pass convergence.
    repaired = run_fsck(device, workers=2, repair=True)
    assert repaired.clean, repaired.summary()
    assert F_DIR_CYCLE in repaired.repairs


def test_46_rename_lease_prevents_cycle_arckfs_plus():
    device = _cross_renames(ARCKFS_PLUS)
    assert run_fsck(device).clean
