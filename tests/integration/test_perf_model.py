"""Regression tests for the performance model against the paper's numbers.

These assert the *reproduction targets*: the single-thread ratios of
Figure 3, every Table 2 cell (within tolerance), the headline geomean, and
the qualitative ordering of the nine systems.  If a cost-model change
breaks a paper-reported shape, these tests catch it.
"""

import pytest

from repro.perf.runner import run_workload, sweep
from repro.perf.stats import geomean
from repro.workloads.fxmark import FXMARK, METADATA_WORKLOADS
from repro.workloads.fio import FIO_WORKLOADS
from repro.workloads.microbench import METADATA_OPS

#: Table 2 of the paper: ArckFS+ / ArckFS at 48 threads (percent).
TABLE2 = {
    "DWTL": 101.25, "MRPL": 84.47, "MRPM": 92.09, "MRPH": 89.18,
    "MRDL": 75.45, "MRDM": 95.94, "MWCL": 99.71, "MWCM": 91.6,
    "MWUL": 118.82, "MWUM": 154.70, "MWRL": 92.25, "MWRM": 90.66,
}

#: Figure 3 single-thread ratios the paper reports in §5.1 (percent).
FIG3 = {"open": 83.3, "create": 92.8, "delete": 92.2}


def ratio_at(workload, threads):
    a = run_workload("arckfs", workload, threads).mops
    p = run_workload("arckfs+", workload, threads).mops
    return p / a * 100.0


class TestFig3SingleThread:
    @pytest.mark.parametrize("op,paper", sorted(FIG3.items()))
    def test_single_thread_ratio(self, op, paper):
        r = ratio_at(METADATA_OPS[op], 1)
        assert r == pytest.approx(paper, abs=1.5), f"{op}: {r:.2f} vs {paper}"

    def test_data_path_unaffected(self):
        """§5.1: read/write throughput comparable (all patches are
        metadata-side)."""
        for op in ("read-4k", "write-4k"):
            r = ratio_at(METADATA_OPS[op], 1)
            assert r == pytest.approx(100.0, abs=0.5)

    def test_arckfs_beats_kernel_fses_single_thread(self):
        for op in ("create", "open", "delete"):
            arck = run_workload("arckfs+", METADATA_OPS[op], 1).mops
            for fs in ("ext4", "pmfs", "nova", "winefs", "splitfs", "strata"):
                other = run_workload(fs, METADATA_OPS[op], 1).mops
                assert arck > other, f"{op}: arckfs+ {arck} <= {fs} {other}"


class TestTable2:
    @pytest.mark.parametrize("name,paper", sorted(TABLE2.items()))
    def test_48_thread_ratio(self, name, paper):
        r = ratio_at(FXMARK[name], 48)
        # Tolerance: the multi-thread points are emergent, not calibrated.
        assert r == pytest.approx(paper, abs=4.0), f"{name}: {r:.2f} vs {paper}"

    def test_geomean_headline(self):
        """'ArckFS+ delivers a geometric mean of 97.23 % of ArckFS's
        throughput in metadata workloads under 48 threads.'"""
        ratios = [ratio_at(FXMARK[n], 48) / 100 for n in METADATA_WORKLOADS]
        g = geomean(ratios) * 100
        assert g == pytest.approx(97.23, abs=1.5), f"geomean {g:.2f}"

    def test_worst_case_is_mrdl(self):
        """'The largest throughput drop occurs in MRDL.'"""
        ratios = {n: ratio_at(FXMARK[n], 48) for n in METADATA_WORKLOADS}
        assert min(ratios, key=ratios.get) == "MRDL"

    def test_unlink_workloads_exceed_100(self):
        """'The throughput increase in MWUM is caused by a change in cache
        line alignment...' — MWUL and MWUM are above 100 %."""
        assert ratio_at(FXMARK["MWUL"], 48) > 100
        assert ratio_at(FXMARK["MWUM"], 48) > 100


class TestScalabilityShape:
    def test_arckfs_scales_on_private_metadata(self):
        curve = sweep(["arckfs+"], FXMARK["MRPL"], [1, 8, 24, 48])["arckfs+"]
        assert curve[8] > 6 * curve[1]
        assert curve[48] > 30 * curve[1]

    def test_ext4_create_collapses_on_journal_lock(self):
        curve = sweep(["ext4"], FXMARK["MWCL"], [1, 8, 48])["ext4"]
        # The jbd2 lock caps scaling well below linear.
        assert curve[48] < 4 * curve[1]

    def test_arckfs_dominates_at_scale(self):
        """Fig. 4: ArckFS family on top of every metadata workload at 48."""
        for name in ("MWCL", "MWUL", "MRPL"):
            arck = run_workload("arckfs+", FXMARK[name], 48).mops
            for fs in ("ext4", "pmfs", "nova", "splitfs", "strata"):
                other = run_workload(fs, FXMARK[name], 48).mops
                assert arck > other, f"{name}: {fs} {other} >= arckfs+ {arck}"

    def test_strata_metadata_bottlenecks(self):
        """The trusted digestion queue caps Strata far below linear."""
        curve = sweep(["strata"], FXMARK["MWCL"], [1, 48])["strata"]
        assert curve[48] < 12 * curve[1]

    def test_fio_write_delegation_wins_at_scale(self):
        """§5.2: direct access + I/O delegation put ArckFS (and OdinFS)
        above the non-delegating kernel FSes once PM saturates."""
        w = FIO_WORKLOADS["seq-write"]
        at48 = {fs: sweep([fs], w, [48])[fs][48]
                for fs in ("arckfs+", "pmfs", "nova", "odinfs", "ext4")}
        assert at48["arckfs+"] > at48["pmfs"]
        assert at48["arckfs+"] > at48["nova"]
        assert at48["odinfs"] > at48["nova"]

    def test_fio_read_bandwidth_saturates(self):
        w = FIO_WORKLOADS["rand-read"]
        curve = sweep(["arckfs+"], w, [1, 8, 48])["arckfs+"]
        # Reads eventually hit aggregate PM bandwidth: sublinear at 48.
        assert curve[48] < 48 * curve[1]
        assert curve[48] >= curve[8]
