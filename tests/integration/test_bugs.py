"""Table 1: each bug manifests under ArckFS and is fixed in ArckFS+.

Beyond the two presets, each patch is also tested in *isolation*: applying
only the relevant flag(s) to the buggy baseline must fix exactly that bug.
"""

import pytest

from repro.bugs import run_all
from repro.bugs import bug_bucket, bug_cycle, bug_fence, bug_release, bug_rename, bug_state
from repro.core.config import ARCKFS, ARCKFS_PLUS

ALL_BUGS = [bug_rename, bug_fence, bug_release, bug_state, bug_bucket, bug_cycle]
BUG_IDS = ["4.1-rename", "4.2-fence", "4.3-release", "4.4-state", "4.5-bucket", "4.6-cycle"]


@pytest.mark.parametrize("mod", ALL_BUGS, ids=BUG_IDS)
def test_bug_manifests_under_arckfs(mod):
    outcome = mod.demonstrate(ARCKFS)
    assert outcome.manifested, outcome.detail


@pytest.mark.parametrize("mod", ALL_BUGS, ids=BUG_IDS)
def test_bug_fixed_under_arckfs_plus(mod):
    outcome = mod.demonstrate(ARCKFS_PLUS)
    assert not outcome.manifested, outcome.detail


class TestPatchIsolation:
    """Applying only the matching patch fixes only that bug."""

    def test_fence_alone_fixes_42(self):
        cfg = ARCKFS.with_patch(fence_before_marker=True, name="arckfs+fence")
        assert not bug_fence.demonstrate(cfg).manifested

    def test_fence_alone_does_not_fix_44(self):
        cfg = ARCKFS.with_patch(fence_before_marker=True, name="arckfs+fence")
        assert bug_state.demonstrate(cfg).manifested

    def test_extended_bucket_lock_fixes_44(self):
        cfg = ARCKFS.with_patch(extended_bucket_lock=True, name="arckfs+ebl")
        assert not bug_state.demonstrate(cfg).manifested

    def test_rcu_fixes_45(self):
        cfg = ARCKFS.with_patch(rcu_buckets=True, name="arckfs+rcu")
        assert not bug_bucket.demonstrate(cfg).manifested

    def test_rcu_alone_does_not_fix_42(self):
        cfg = ARCKFS.with_patch(rcu_buckets=True, name="arckfs+rcu")
        assert bug_fence.demonstrate(cfg).manifested

    def test_locked_release_fixes_43(self):
        cfg = ARCKFS.with_patch(locked_release=True, name="arckfs+lr")
        assert not bug_release.demonstrate(cfg).manifested

    def test_rename_patches_fix_41(self):
        cfg = ARCKFS.with_patch(
            rename_commit_protocol=True,
            shadow_parent_pointer=True,
            global_rename_lock=True,
            name="arckfs+rename",
        )
        assert not bug_rename.demonstrate(cfg).manifested

    def test_rename_lock_and_descendant_check_fix_46(self):
        cfg = ARCKFS.with_patch(
            global_rename_lock=True,
            descendant_check=True,
            # re-resolution under the lease needs the protocol's commits to
            # be legal only in the +-variant; the cycle fix itself does not.
            name="arckfs+lock",
        )
        assert not bug_cycle.demonstrate(cfg).manifested

    def test_descendant_check_alone_fixes_case2_only(self):
        cfg = ARCKFS.with_patch(descendant_check=True, name="arckfs+desc")
        assert not bug_cycle._case_descendant(cfg).manifested
        assert bug_cycle._case_concurrent(cfg).manifested


def test_run_all_summary():
    buggy = run_all(ARCKFS)
    fixed = run_all(ARCKFS_PLUS)
    assert len(buggy) == len(fixed) == 6
    assert all(o.manifested for o in buggy)
    assert not any(o.manifested for o in fixed)
