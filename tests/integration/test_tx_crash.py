"""Transaction crash-atomicity end-to-end: every crash state is all-or-none.

The contract under test: a crash *anywhere* inside ``Tx.commit`` leaves a
volume that, after mount-time recovery, shows either every staged op or
none of them — never a prefix.  The seal (one 8-byte atomic store of the
log chain's head) is the commit point; these tests enumerate the device's
reachable crash images around it and mount each one.

Also here: the roll-forward (``TxCommitPending``) and rollback
(``TxAborted``) halves of a mid-apply *failure* (not crash), including
the delegation-lease regression — a transaction aborting after dirtying
a lease-delegated file must restore the parked pre-dirty snapshot.
"""

import pytest

from repro.api import Volume, VolumeConfig
from repro.concurrency.failpoints import failpoints
from repro.errors import CrashPoint, TryAgain, TxAborted, TxCommitPending
from repro.fsck import F_TX_TORN, TX_CLASSES, fsck_checker, run_fsck
from repro.pm.device import PMDevice
from repro.tx.log import read_head, seal

SIZE = 4 * 1024 * 1024
ENUM_LIMIT = 2048


def make_volume(**kw):
    return Volume.create(SIZE, config=VolumeConfig(
        inode_count=64, crash_tracking=True), **kw)


def stage_tx(s):
    """The canonical test transaction: create+write, rename, unlink."""
    tx = s.transaction()
    tx.create("/t1")
    tx.pwrite("/t1", b"T1", 0)
    tx.rename("/pre", "/moved")
    tx.unlink("/victim")
    return tx


def populate(s):
    s.write_file("/pre", b"old")
    s.write_file("/victim", b"doomed")


def observed_state(s):
    """Classify a recovered volume: 'all', 'none', or a torn description."""
    t1 = s.read_file("/t1") if s.exists("/t1") else None
    state = (
        t1,
        s.exists("/pre"),
        s.exists("/moved"),
        s.exists("/victim"),
    )
    if state == (b"T1", False, True, False):
        return "all"
    if state == (None, True, False, True):
        return "none"
    return f"torn:{state!r}"


def crash_at(site, match=None):
    def boom(ctx):
        if match is None or match(ctx):
            raise CrashPoint(site)
    failpoints.install(site, boom)


class TestCrashAtomicity:
    """Enumerate crash images around every commit phase; mount each."""

    def run_crashed_commit(self, install):
        vol = make_volume()
        s = vol.session("app")
        populate(s)
        tx = stage_tx(s)
        install()
        with pytest.raises(CrashPoint):
            tx.commit()
        failpoints.clear()
        return vol

    def assert_all_or_none(self, vol, expect=("all", "none")):
        checker = fsck_checker(classes=TX_CLASSES)
        seen = set()
        images = vol.device.enumerate_crash_images(limit=ENUM_LIMIT)
        assert images, "crash tracking produced no images"
        for image in images:
            mounted = Volume.mount(image)
            # No tx-torn finding may survive recovery...
            assert checker(mounted.device) is None
            assert run_fsck(mounted.device).clean
            # ...and the namespace is all-or-none.
            with mounted.session("check") as c:
                state = observed_state(c)
            assert state in expect, state
            seen.add(state)
        return seen

    def test_crash_before_seal_shows_none(self):
        vol = self.run_crashed_commit(lambda: crash_at("tx.pre_seal"))
        seen = self.assert_all_or_none(vol)
        # The seal never published on the final image; at least one crash
        # image must show the untouched volume.
        assert "none" in seen

    def test_crash_after_seal_replays_all(self):
        vol = self.run_crashed_commit(lambda: crash_at("tx.post_seal"))
        seen = self.assert_all_or_none(vol)
        # The final durable image carries the seal: replay must reach
        # "all" for it (earlier images may still predate the seal fence).
        final = Volume.mount(vol.device.durable_image())
        with final.session("check") as c:
            assert observed_state(c) == "all"
        assert "all" in seen

    @pytest.mark.parametrize("op_index", [0, 1, 2, 3])
    def test_crash_mid_apply_replays_all(self, op_index):
        vol = self.run_crashed_commit(
            lambda: crash_at("tx.apply_op",
                             match=lambda ctx: ctx[1] == op_index))
        final = Volume.mount(vol.device.durable_image())
        with final.session("check") as c:
            assert observed_state(c) == "all"
        self.assert_all_or_none(vol)

    def test_crash_before_checkpoint_replays_all(self):
        vol = self.run_crashed_commit(lambda: crash_at("tx.pre_checkpoint"))
        final = Volume.mount(vol.device.durable_image())
        assert final.recovery.tx_replayed == 4
        with final.session("check") as c:
            assert observed_state(c) == "all"
        self.assert_all_or_none(vol)

    def test_concurrent_non_tx_traffic_survives_independently(self):
        """A non-tx write racing the commit persists on its own terms —
        the transaction's atomicity never extends to (or swallows) it."""
        vol = make_volume()
        s = vol.session("app")
        noise = vol.session("noise")
        populate(s)
        tx = stage_tx(s)
        s.release_all()  # staging only read; let the noise writer in

        def interleave_then_crash(_ctx):
            noise.write_file("/noise", b"independent")
            noise.release_all()
            raise CrashPoint("post_seal")

        failpoints.install("tx.post_seal", interleave_then_crash)
        with pytest.raises(CrashPoint):
            tx.commit()
        failpoints.clear()

        final = Volume.mount(vol.device.durable_image())
        with final.session("check") as c:
            assert observed_state(c) == "all"
            assert c.read_file("/noise") == b"independent"
        assert run_fsck(final.device).clean


class TestRecovery:
    def test_replay_is_idempotent_over_repeated_mounts(self):
        vol = make_volume()
        s = vol.session("app")
        populate(s)
        tx = stage_tx(s)
        crash_at("tx.pre_checkpoint")
        with pytest.raises(CrashPoint):
            tx.commit()
        failpoints.clear()
        image = vol.device.durable_image()

        dev = PMDevice.from_image(image)
        first = Volume.mount(dev)
        assert first.recovery.tx_replayed == 4
        assert read_head(dev) == 0
        # Mounting the *recovered* device again replays nothing.
        second = Volume.mount(dev)
        assert second.recovery.tx_replayed == 0
        with second.session("check") as c:
            assert observed_state(c) == "all"

    def test_corrupt_sealed_log_is_discarded(self):
        vol = make_volume()
        with vol.session("app") as s:
            s.write_file("/keep", b"kept")
        dev = PMDevice.from_image(vol.device.durable_image())
        seal(dev, 9_999_999)  # head pointing nowhere
        mounted = Volume.mount(dev)
        assert mounted.recovery.tx_discarded == 1
        assert mounted.recovery.tx_replayed == 0
        assert read_head(dev) == 0
        with mounted.session("check") as c:
            assert c.read_file("/keep") == b"kept"
        assert run_fsck(dev, repair=True).clean

    def test_fsck_repair_replays_without_a_mount(self):
        vol = make_volume()
        s = vol.session("app")
        populate(s)
        tx = stage_tx(s)
        crash_at("tx.pre_checkpoint")
        with pytest.raises(CrashPoint):
            tx.commit()
        failpoints.clear()
        dev = PMDevice.from_image(vol.device.durable_image())

        report = run_fsck(dev)
        assert not report.clean
        assert len(report.by_class(F_TX_TORN)) == 1
        repaired = run_fsck(dev, repair=True)
        assert repaired.clean
        assert repaired.repairs.get(F_TX_TORN) == 1
        mounted = Volume.mount(dev)
        assert mounted.recovery.tx_replayed == 0  # fsck already replayed
        with mounted.session("check") as c:
            assert observed_state(c) == "all"


class TestApplyFailure:
    """Mid-apply *failures* (the process survives): rollback vs roll-forward."""

    def fail_apply_at(self, op_index, exc_factory=TryAgain):
        def hook(ctx):
            if ctx[1] == op_index:
                raise exc_factory("injected apply failure")
        failpoints.install("tx.apply_op", hook)

    def test_failure_before_unlink_rolls_back(self):
        vol = make_volume()
        s = vol.session("app")
        populate(s)
        tx = stage_tx(s)
        self.fail_apply_at(3)  # fail ON the unlink: nothing irreversible ran
        with pytest.raises(TxAborted):
            tx.commit()
        failpoints.clear()
        assert tx.state == "aborted"
        assert observed_state(s) == "none"
        assert s.read_file("/pre") == b"old"
        assert read_head(vol.device) == 0
        s.shutdown()
        assert run_fsck(vol.device).clean

    def test_failure_after_unlink_leaves_log_pending(self):
        vol = make_volume()
        s = vol.session("app")
        populate(s)
        tx = s.transaction()
        tx.unlink("/victim")
        tx.create("/t1")
        self.fail_apply_at(1)  # the unlink already applied: irreversible
        with pytest.raises(TxCommitPending):
            tx.commit()
        failpoints.clear()
        assert tx.state == "pending-replay"
        assert read_head(vol.device) != 0  # sealed log left for recovery
        mounted = Volume.mount(vol.device.durable_image())
        assert mounted.recovery.tx_replayed == 2
        with mounted.session("check") as c:
            assert not c.exists("/victim")
            assert c.exists("/t1")
        assert run_fsck(mounted.device).clean

    def test_abort_restores_parked_delegation_snapshot(self):
        """Regression for the lease-delegation rollback path: a tx aborting
        after dirtying a lease-delegated file must restore the *parked*
        pre-dirty snapshot (the one the delegation contract keeps), not
        the post-dirty state the failing apply left behind."""
        vol = Volume.create(SIZE, config=VolumeConfig(
            inode_count=64, verify_delegation=True,
            delegation_window=30.0))
        s = vol.session("app")
        s.write_file("/hot", b"clean" * 1024)
        s.release_all()
        # A read release is what the lease delegates: this parks the
        # pre-dirty snapshot that the abort must restore.
        fd = s.open("/hot")
        assert s.pread(fd, 5, 0) == b"clean"
        s.close(fd)
        s.release_all()
        kernel = vol.kernel
        assert kernel.stats.delegated_releases >= 1
        rollbacks0 = kernel.stats.rollbacks

        tx = s.transaction()
        tx.pwrite("/hot", b"DIRTY" * 1024, 0)
        tx.create("/marker")
        self.fail_apply_at(1)  # /hot is already dirty when this fails
        with pytest.raises(TxAborted):
            tx.commit()
        failpoints.clear()

        assert kernel.stats.rollbacks > rollbacks0
        assert s.read_file("/hot") == b"clean" * 1024
        assert not s.exists("/marker")
        s.shutdown()
        assert vol.fsck().clean
