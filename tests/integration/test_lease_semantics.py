"""The §4.6 lease semantics end-to-end: 'implemented as a lease with a
timeout to prevent a malicious application from holding it indefinitely'."""

import time

import pytest

from repro.concurrency.lease import LeaseExpired
from repro.core.config import ARCKFS_PLUS
from repro.errors import CorruptionDetected
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice


def two_apps(lease_duration=0.05):
    device = PMDevice(32 * 1024 * 1024)
    kernel = KernelController.fresh(device, inode_count=256, config=ARCKFS_PLUS)
    kernel.rename_lease.duration = lease_duration
    a = LibFS(kernel, "appA", uid=0)
    b = LibFS(kernel, "appB", uid=0)
    return device, kernel, a, b


class TestLeaseSemantics:
    def test_hoarder_cannot_block_renames_forever(self):
        """A malicious app grabs the lease and never releases it; the lease
        expires and another app's directory rename proceeds."""
        _dev, kernel, hoarder_fs, victim_fs = two_apps(lease_duration=0.05)
        victim_fs.mkdir("/src", mode=0o777)
        victim_fs.mkdir("/src/d", mode=0o777)
        victim_fs.mkdir("/dst", mode=0o777)
        victim_fs.release_all()

        kernel.rename_lock_acquire("appA")  # ...and never releases
        time.sleep(0.1)  # past the lease timeout
        victim_fs.rename("/src/d", "/dst/d")  # steals the lapsed lease
        victim_fs.release_all()
        dst = kernel.shadow[kernel.shadow[0].children[b"dst"]]
        assert b"d" in dst.children

    def test_stale_holder_release_fails(self):
        _dev, kernel, a, b = two_apps(lease_duration=0.02)
        kernel.rename_lock_acquire("appA")
        time.sleep(0.05)
        kernel.rename_lock_acquire("appB")
        with pytest.raises(LeaseExpired):
            kernel.rename_lock_release("appA")

    def test_lease_expiry_mid_relocation_fails_verification(self):
        """If the lease lapses before the new parent commits, check (3)
        rejects the relocation — the kernel never trusts a stale holder."""
        _dev, kernel, fs, _b = two_apps(lease_duration=0.04)
        fs.mkdir("/src")
        fs.mkdir("/src/d")
        fs.close(fs.creat("/src/d/f"))
        fs.mkdir("/dst")
        fs.release_all()

        # Manual protocol with a deliberate stall while holding the lease.
        manual = ARCKFS_PLUS.with_patch(rename_commit_protocol=False,
                                        name="manual")
        slow = LibFS(kernel, "slow", uid=0, config=manual)
        slow.rename("/src/d", "/dst/d")  # apply (lease taken+released inside)
        time.sleep(0.06)  # any lease we had has lapsed
        with pytest.raises(CorruptionDetected, match="lease"):
            slow.commit_path("/dst")

    def test_lease_is_per_thread_within_an_app(self):
        """The global rename lock serializes threads of one LibFS too
        (case (1) of §4.6 races two threads of the same app)."""
        import threading

        _dev, kernel, fs, _b = two_apps(lease_duration=5.0)
        kernel.rename_lock_acquire("appA")  # main thread holds it
        got = []

        def other_thread():
            got.append(kernel.rename_lease.try_acquire(
                kernel._lease_holder("appA")))

        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        assert got == [False]  # same app, different thread: must wait
        kernel.rename_lock_release("appA")
