"""The LSM KV store: unit behaviour, recovery, and runs on every FS."""

import pytest

from repro.basefs import make_baseline
from repro.core.config import ARCKFS_PLUS
from repro.kernel.controller import KernelController
from repro.kv.db import DB
from repro.kv.memtable import MemTable
from repro.kv.options import Options
from repro.kv.sstable import BloomFilter, SSTable, SSTableWriter
from repro.kv.wal import OP_PUT, WALWriter, replay
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice

SMALL = Options(memtable_bytes=2048, tables_per_level=2, levels=3)


def arck_fs():
    device = PMDevice(64 * 1024 * 1024, crash_tracking=False)
    kernel = KernelController.fresh(device, inode_count=512, config=ARCKFS_PLUS)
    return LibFS(kernel, "kv", uid=0, config=ARCKFS_PLUS)


@pytest.fixture
def fs():
    return arck_fs()


class TestComponents:
    def test_memtable_basic(self):
        mt = MemTable()
        mt.put(1, b"a", b"1")
        mt.put(2, b"b", b"2")
        mt.delete(3, b"a")
        assert mt.get(b"a") == (True, None)  # tombstone
        assert mt.get(b"b") == (True, b"2")
        assert mt.get(b"c") == (False, None)
        assert [k for k, _s, _v in mt.items_sorted()] == [b"a", b"b"]

    def test_bloom_filter(self):
        bf = BloomFilter(1024)
        keys = [f"key{i}".encode() for i in range(50)]
        for k in keys:
            bf.add(k)
        assert all(bf.may_contain(k) for k in keys)
        misses = sum(bf.may_contain(f"other{i}".encode()) for i in range(200))
        assert misses < 40  # false-positive rate is sane

    def test_wal_roundtrip_and_torn_tail(self, fs):
        fs.mkdir("/w")
        w = WALWriter(fs, "/w/log")
        w.append(1, OP_PUT, b"k1", b"v1")
        w.append(2, OP_PUT, b"k2", b"v2")
        w.close()
        # Torn tail: append garbage that fails the CRC.
        fd = fs.open("/w/log")
        size = fs.stat("/w/log").size
        fs.close(fd)
        fd = fs.open("/w/log")
        fs.pwrite(fd, b"\x01" * 25, size)
        fs.close(fd)
        records = list(replay(fs, "/w/log"))
        assert [(r[0], r[2], r[3]) for r in records] == [
            (1, b"k1", b"v1"), (2, b"k2", b"v2")]

    def test_sstable_roundtrip(self, fs):
        fs.makedirs("/t")
        entries = [(f"k{i:04d}".encode(), i, f"v{i}".encode()) for i in range(300)]
        writer = SSTableWriter(fs, "/t/x.sst", Options(block_bytes=512))
        assert writer.write(iter(entries)) == 300
        table = SSTable(fs, "/t/x.sst")
        assert table.count == 300
        assert len(table.index) > 1  # multiple blocks
        assert table.get(b"k0000") == (True, b"v0")
        assert table.get(b"k0299") == (True, b"v299")
        assert table.get(b"nope") == (False, None)
        assert [k for k, _s, _v in table] == [e[0] for e in entries]

    def test_sstable_tombstones(self, fs):
        fs.makedirs("/t")
        writer = SSTableWriter(fs, "/t/x.sst", Options())
        writer.write(iter([(b"dead", 5, None), (b"live", 6, b"yes")]))
        table = SSTable(fs, "/t/x.sst")
        assert table.get(b"dead") == (True, None)
        assert table.get(b"live") == (True, b"yes")


class TestDB:
    def test_put_get_delete(self, fs):
        db = DB(fs, "/db", SMALL)
        db.put(b"alpha", b"1")
        db.put(b"beta", b"2")
        assert db.get(b"alpha") == b"1"
        db.delete(b"alpha")
        assert db.get(b"alpha") is None
        assert db.get(b"beta") == b"2"

    def test_flush_and_read_from_sstable(self, fs):
        db = DB(fs, "/db", SMALL)
        for i in range(100):
            db.put(f"k{i:03d}".encode(), b"v" * 50)
        assert db.stats["flushes"] >= 1
        assert db.get(b"k000") == b"v" * 50
        assert db.get(b"k099") == b"v" * 50

    def test_overwrite_across_flushes(self, fs):
        db = DB(fs, "/db", SMALL)
        db.put(b"key", b"old")
        db.flush()
        db.put(b"key", b"new")
        assert db.get(b"key") == b"new"
        db.flush()
        assert db.get(b"key") == b"new"

    def test_delete_masks_flushed_value(self, fs):
        db = DB(fs, "/db", SMALL)
        db.put(b"key", b"value")
        db.flush()
        db.delete(b"key")
        assert db.get(b"key") is None
        db.flush()
        assert db.get(b"key") is None

    def test_compaction_reduces_tables_and_preserves_data(self, fs):
        db = DB(fs, "/db", SMALL)
        for i in range(400):
            # distinct keys with chunky values so several flushes happen
            db.put(f"k{i:03d}".encode(), b"v" * 40 + str(i).encode())
        assert db.stats["flushes"] >= 3
        assert db.stats["compactions"] >= 1
        for i in range(400):
            got = db.get(f"k{i:03d}".encode())
            assert got is not None and got.endswith(str(i).encode())

    def test_scan_ordered(self, fs):
        db = DB(fs, "/db", SMALL)
        import random

        keys = [f"k{i:04d}".encode() for i in range(200)]
        shuffled = keys[:]
        random.Random(7).shuffle(shuffled)
        for k in shuffled:
            db.put(k, b"v")
        got = [k for k, _v in db.scan()]
        assert got == keys

    def test_scan_range(self, fs):
        db = DB(fs, "/db", SMALL)
        for i in range(50):
            db.put(f"k{i:02d}".encode(), b"v")
        got = [k for k, _v in db.scan(start=b"k10", end=b"k20")]
        assert got == [f"k{i}".encode() for i in range(10, 20)]

    def test_recovery_from_wal(self, fs):
        db = DB(fs, "/db", SMALL)
        db.put(b"persisted", b"yes")
        # No close/flush: reopen replays the WAL.
        db2 = DB(fs, "/db", SMALL)
        assert db2.stats["wal_replayed"] >= 1
        assert db2.get(b"persisted") == b"yes"

    def test_recovery_from_manifest(self, fs):
        db = DB(fs, "/db", SMALL)
        for i in range(100):
            db.put(f"k{i:03d}".encode(), b"v")
        db.close()
        db2 = DB(fs, "/db", SMALL)
        assert db2.get(b"k050") == b"v"
        assert len(list(db2.scan())) == 100

    def test_seq_monotonic_across_recovery(self, fs):
        db = DB(fs, "/db", SMALL)
        db.put(b"a", b"1")
        db.close()
        db2 = DB(fs, "/db", SMALL)
        db2.put(b"a", b"2")
        assert db2.get(b"a") == b"2"


@pytest.mark.parametrize("backend", ["ext4", "nova", "splitfs", "strata"])
def test_db_runs_on_baselines(backend):
    fs = make_baseline(backend, PMDevice(64 * 1024 * 1024, crash_tracking=False))
    db = DB(fs, "/db", SMALL)
    for i in range(60):
        db.put(f"k{i:02d}".encode(), f"v{i}".encode())
    db.delete(b"k10")
    assert db.get(b"k10") is None
    assert db.get(b"k59") == b"v59"
    db.close()
    db2 = DB(fs, "/db", SMALL)
    assert db2.get(b"k30") == b"v30"


def test_leveldb_is_data_dominated():
    """§5.3: 'the LevelDB benchmark is dominated by data operations'."""
    from repro.workloads.leveldb_bench import run_dbbench

    fs = arck_fs()
    result = run_dbbench(fs, "fillrandom", n=300)
    assert result.data_dominance > 0.9
    assert result.bytes_written > 300 * 100  # the values really moved
