"""The cross-app read-mostly mapping cache (zero-crossing reads).

A verified release of a regular file publishes it into the kernel's shared
read-only table; other applications then read-attach with **no kernel
crossing**.  Any write acquisition (or deletion) invalidates the entry and
revokes every handed-out mapping before the writer proceeds.
"""

import pytest

from repro import obs
from repro.core.config import ARCKFS_PLUS, ARCKFS_PLUS_ZC
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice


def two_apps(config=ARCKFS_PLUS_ZC):
    device = PMDevice(64 * 1024 * 1024)
    kernel = KernelController.fresh(device, inode_count=256, config=config)
    app1 = LibFS(kernel, "app1", uid=1000, config=config)
    app2 = LibFS(kernel, "app2", uid=1000, config=config)
    return device, kernel, app1, app2


def crossings() -> int:
    return obs.metrics.snapshot()["counters"].get("kernel.crossings", 0)


class TestPublish:
    def test_verified_release_publishes_regular_file(self):
        _dev, kernel, app1, _app2 = two_apps()
        app1.write_file("/f", b"data")
        ino = app1.stat("/f").ino
        assert kernel.readcache.published(ino) is None  # still owned
        app1.release_all()
        assert kernel.readcache.published(ino) is not None
        assert kernel.readcache.stats.publishes >= 1

    def test_directories_never_published(self):
        _dev, kernel, app1, _app2 = two_apps()
        app1.mkdir("/d")
        ino = app1.stat("/d").ino
        app1.release_all()
        assert kernel.readcache.published(ino) is None

    def test_seed_config_never_publishes(self):
        _dev, kernel, app1, _app2 = two_apps(config=ARCKFS_PLUS)
        app1.write_file("/f", b"data")
        app1.release_all()
        assert kernel.readcache.stats.publishes == 0


class TestZeroCrossingReads:
    def test_steady_state_reads_cost_zero_crossings(self):
        _dev, kernel, app1, app2 = two_apps()
        payload = b"published!" * 100
        app1.write_file("/f", payload)
        app1.release_all()

        # Warm app2's directory state (real acquisitions, crossings OK).
        # This already cache-attaches /f itself — zero crossings from here.
        hits0 = kernel.readcache.stats.hits
        assert app2.stat("/f").size == len(payload)
        assert kernel.readcache.stats.hits > hits0

        obs.reset()
        obs.enable()
        try:
            for _ in range(16):
                fd = app2.open("/f")
                assert app2.pread(fd, len(payload), 0) == payload
                app2.close(fd)
            snap = obs.metrics.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        # Steady state: every op revalidated the published version and
        # nothing entered the kernel in the measured window.
        assert snap.get("kernel.crossings", 0) == 0, snap
        assert kernel.readcache.stats.validations >= 16

    def test_successive_readers_share_the_published_file(self):
        _dev, kernel, app1, app2 = two_apps()
        app3 = LibFS(kernel, "app3", uid=1000, config=app1.config)
        app1.write_file("/f", b"shared-data")
        app1.release_all()
        hits0 = kernel.readcache.stats.hits
        ino = None
        for app in (app2, app3):
            # stat warms the directory chain (real read acquisitions of
            # the dirs — root ownership is exclusive, hence release_all
            # between readers) and cache-attaches the file itself.
            ino = app.stat("/f").ino
            acq_dirs = kernel.stats.acquires
            fd = app.open("/f")
            assert app.pread(fd, 64, 0) == b"shared-data"
            app.close(fd)
            # The file never cost a kernel acquisition for this reader.
            assert kernel.stats.acquires == acq_dirs
            app.release_all()
        assert kernel.readcache.stats.hits >= hits0 + 2
        assert ino not in kernel.acquisitions


class TestInvalidation:
    def test_write_acquire_revokes_and_readers_see_new_data(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.write_file("/f", b"version-one")
        app1.release_all()
        fd2 = app2.open("/f")
        assert app2.pread(fd2, 64, 0) == b"version-one"
        inv0 = kernel.readcache.stats.invalidations

        # app1 takes the file back for write: the published entry must be
        # invalidated before app1's mapping is granted.
        app1.write_file("/f", b"version-two")
        assert kernel.readcache.stats.invalidations > inv0
        app1.release_all()  # republish at a new version

        # app2's cached mapping was revoked; its next read revalidates,
        # re-attaches and sees the new bytes.
        assert app2.pread(fd2, 64, 0) == b"version-two"
        app2.close(fd2)

    def test_unlink_invalidates(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.write_file("/f", b"doomed")
        app1.release_all()
        ino = app1.stat("/f").ino
        assert kernel.readcache.published(ino) is not None
        app1.unlink("/f")
        app1.release_all()
        assert kernel.readcache.published(ino) is None

    def test_cached_reader_promotes_to_writer(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.write_file("/f", b"aaaa")
        app1.release_all()
        fd2 = app2.open("/f")
        assert app2.pread(fd2, 4, 0) == b"aaaa"  # cache-attached
        app2.pwrite(fd2, b"bbbb", 0)  # promote: real write acquisition
        app2.close(fd2)
        app2.release_all()
        # The ping-pong stays coherent: app1 re-reads app2's bytes.
        assert app1.read_file("/f") == b"bbbb"


class TestLocalRelease:
    def test_cache_attached_release_skips_the_kernel(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.write_file("/f", b"data")
        app1.release_all()
        fd2 = app2.open("/f")
        assert app2.pread(fd2, 4, 0) == b"data"
        app2.close(fd2)
        ino = app2.stat("/f").ino
        rel0 = kernel.stats.releases
        app2.release_ino(ino)
        assert kernel.stats.releases == rel0  # handed back locally
        # And the read still works afterwards (re-attach via the cache).
        assert app2.read_file("/f") == b"data"

    def test_shutdown_returns_handouts(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.write_file("/f", b"data")
        app1.release_all()
        ino = app1.stat("/f").ino
        fd2 = app2.open("/f")
        assert app2.pread(fd2, 4, 0) == b"data"
        app2.shutdown()
        # No mapping left handed out for the inode after app2 is gone.
        assert ino not in kernel.readcache._handouts
