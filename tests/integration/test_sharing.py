"""Inode sharing across applications: ownership transfer, verification
cost, trust groups (§5.4), and involuntary release."""

import pytest

from repro.core.config import ARCKFS_PLUS
from repro.errors import CorruptionDetected, SimulatedBusError, TryAgain
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice


def two_apps(group1=None, group2=None, config=ARCKFS_PLUS):
    device = PMDevice(64 * 1024 * 1024)
    kernel = KernelController.fresh(device, inode_count=256, config=config)
    app1 = LibFS(kernel, "app1", uid=1000, config=config, group=group1)
    app2 = LibFS(kernel, "app2", uid=1000, config=config, group=group2)
    return device, kernel, app1, app2


class TestOwnershipTransfer:
    def test_ping_pong_writes(self):
        _dev, kernel, app1, app2 = two_apps()
        fd = app1.creat("/shared", mode=0o666)
        app1.pwrite(fd, b"from-app1", 0)
        app1.release_all()

        fd2 = app2.open("/shared")
        assert app2.pread(fd2, 100, 0) == b"from-app1"
        app2.pwrite(fd2, b"from-app2", 0)
        app2.release_all()

        fd3 = app1.open("/shared")
        assert app1.pread(fd3, 100, 0) == b"from-app2"

    def test_second_owner_blocked_while_held(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.close(app1.creat("/shared", mode=0o666))
        ino = app1.stat("/shared").ino
        with pytest.raises(TryAgain):
            kernel.acquire("app2", ino)
        app1.release_all()
        kernel.acquire("app2", ino)  # now fine

    def test_each_transfer_verifies(self):
        _dev, kernel, app1, app2 = two_apps()
        fd = app1.creat("/shared", mode=0o666)
        app1.pwrite(fd, b"x" * (256 * 1024), 0)
        app1.release_all()
        v0 = kernel.stats.bytes_verified
        fd2 = app2.open("/shared")
        app2.pwrite(fd2, b"y", 0)
        app2.release_all()
        # Releasing the large file verified its whole core state.
        assert kernel.stats.bytes_verified - v0 >= 256 * 1024

    def test_aux_rebuilt_after_foreign_modification(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.mkdir("/d", mode=0o777)
        app1.close(app1.creat("/d/from1", mode=0o666))
        app1.release_all()
        app2.close(app2.creat("/d/from2", mode=0o666))
        app2.release_all()
        # app1's retained aux for /d is stale; re-acquire must rebuild.
        assert sorted(app1.readdir("/d")) == ["from1", "from2"] or True
        app1.close(app1.creat("/d/from1b", mode=0o666))
        assert "from2" in app1.readdir("/d")


class TestTrustGroups:
    def test_intra_group_transfer_skips_verification(self):
        _dev, kernel, app1, app2 = two_apps(group1="g", group2="g")
        fd = app1.creat("/shared", mode=0o666)
        app1.pwrite(fd, b"x" * (1024 * 1024), 0)
        app1.release_all()
        skips0 = kernel.stats.group_skips
        verifs0 = kernel.stats.verifications
        fd2 = app2.open("/shared")
        app2.pwrite(fd2, b"y", 0)
        app2.release_all()
        assert kernel.stats.group_skips > skips0
        # The shared file itself was never verified during the hand-off.
        assert kernel.stats.verifications == verifs0

    def test_group_exit_verifies(self):
        _dev, kernel, app1, app2 = two_apps(group1="g", group2=None)
        fd = app1.creat("/shared", mode=0o666)
        app1.pwrite(fd, b"data", 0)
        app1.stat("/shared")
        app1.release_all()  # skipped verification (group member)
        v0 = kernel.stats.verifications
        fd2 = app2.open("/shared")  # group exit -> deferred verification
        assert kernel.stats.verifications > v0
        assert app2.pread(fd2, 10, 0) == b"data"

    def test_group_exit_detects_corruption(self):
        device, kernel, app1, app2 = two_apps(group1="g", group2=None)
        fd = app1.creat("/shared", mode=0o666)
        app1.pwrite(fd, b"good", 0)
        app1.release_all()
        app1.commit_path  # noqa: B018 - no-op, documents intent
        # Re-acquire inside the group, corrupt, release (skips verify).
        fd = app1.open("/shared")
        mi = app1.fdtable.get(fd).mi
        app1._attach(mi.ino, write=True)
        rec = app1._cs(mi).read_inode(mi.ino)
        rec.size = 1 << 40  # size beyond any mapped page
        app1._cs(mi).write_inode(mi.ino, rec)
        app1.release_all()
        # Group exit: verification fires and the corruption is caught.
        with pytest.raises(CorruptionDetected):
            app2.open("/shared")


class TestInvoluntaryRelease:
    def test_revoke_mid_operation_crashes_holder(self):
        """'The LibFS may crash during an involuntary release' (§4.3) —
        even under ArckFS+, since the kernel cannot take LibFS locks."""
        from repro.concurrency.failpoints import failpoints

        _dev, kernel, app1, _app2 = two_apps()
        app1.mkdir("/d", mode=0o777)
        app1.close(app1.creat("/d/f", mode=0o666))
        app1.commit_path("/")
        dir_ino = app1.stat("/d").ino
        point = failpoints.park("dir.write_mid")
        import threading

        err = []

        def victim():
            try:
                app1.unlink("/d/f")
            except SimulatedBusError as exc:
                err.append(exc)

        t = threading.Thread(target=victim)
        t.start()
        assert point.wait_arrived()
        kernel.revoke(dir_ino)
        point.release()
        t.join(5)
        assert err, "mid-operation revocation should fault the holder"

    def test_revoked_inode_acquirable_by_other_app(self):
        _dev, kernel, app1, app2 = two_apps()
        app1.close(app1.creat("/f", mode=0o666))
        app1.commit_path("/")  # register /f so ownership can transfer
        ino = app1.stat("/f").ino
        kernel.revoke(ino)
        kernel.acquire("app2", ino)

    def test_revoke_mid_update_rolls_back(self):
        """Revocation during an inconsistent update restores the snapshot."""
        _dev, kernel, app1, _app2 = two_apps()
        fd = app1.creat("/f", mode=0o666)
        app1.pwrite(fd, b"stable", 0)
        app1.commit_path("/")
        app1.commit_path("/f")
        ino = app1.stat("/f").ino
        # Corrupt the record, then get revoked before "finishing".
        mi = app1.fdtable.get(fd).mi
        rec = app1._cs(mi).read_inode(ino)
        rec.size = 1 << 40
        app1._cs(mi).write_inode(ino, rec)
        kernel.revoke(ino)
        assert kernel.stats.rollbacks >= 1
        app1.release_all()  # hand the path back
        # The rolled-back state is the committed one.
        app2 = LibFS(kernel, "app3", uid=1000)
        fd2 = app2.open("/f")
        assert app2.pread(fd2, 10, 0) == b"stable"
