"""Lease-based read delegation end-to-end (the tentpole's deferral arm).

A LibFS re-acquiring a file it just released within the delegation window
skips re-verification; any cross-app acquisition, a lapsed window, or an
orderly shutdown runs the deferred verification first — so no unverified
state is ever observed across protection domains.
"""

import time

import pytest

from repro.api import Volume
from repro.errors import CorruptionDetected


def make_volume(window=30.0):
    return Volume.create(32 * 1024 * 1024, inode_count=128,
                         verify_delegation=True, delegation_window=window)


def hot_ino(kernel):
    return kernel.shadow[0].children[b"hot"]


class TestDelegation:
    def test_same_app_reacquire_skips_verification(self):
        with make_volume() as vol:
            kernel = vol.kernel
            a = vol.session("app1", uid=1000)
            a.write_file("/hot", b"x" * 8192)
            a.release_all()
            v0 = kernel.stats.verifications
            for _ in range(3):
                fd = a.open("/hot")
                assert a.pread(fd, 4, 0) == b"xxxx"
                a.close(fd)
                a.release_all()
            # Releases deferred, re-acquires hit the lease: no verification
            # of the file ran in the loop (the root directory still pays —
            # directories are never delegated).
            assert kernel.stats.delegation_hits >= 2
            assert kernel.stats.delegated_releases >= 3
            file_verifies = [ino for ino in (hot_ino(kernel),)
                             if ino in kernel._deferred]
            assert file_verifies  # still deferred, nobody verified it
            assert kernel.stats.verifications - v0 <= 3 + 1  # root only

    def test_cross_app_write_revokes_and_verifies_first(self):
        with make_volume() as vol:
            kernel = vol.kernel
            a = vol.session("app1", uid=1000)
            b = vol.session("app2", uid=1000)
            a.write_file("/hot", b"a" * 4096)
            a.release_all()
            fd = a.open("/hot")
            a.pwrite(fd, b"A" * 4096, 0)
            a.close(fd)
            a.release_all()  # deferred under the lease
            ino = hot_ino(kernel)
            assert ino in kernel._deferred
            d0 = kernel.stats.deferred_verifications
            fd = b.open("/hot")  # cross-app: revoke + deferred verify NOW
            assert kernel.stats.deferred_verifications == d0 + 1
            assert ino not in kernel._deferred
            assert b.pread(fd, 4, 0) == b"AAAA"  # the verified write
            b.pwrite(fd, b"B" * 4096, 0)
            b.close(fd)
            b.release_all()

    def test_lapsed_window_verifies_on_reacquire(self):
        with make_volume(window=0.01) as vol:
            kernel = vol.kernel
            a = vol.session("app1", uid=1000)
            a.write_file("/hot", b"y" * 4096)
            a.release_all()
            fd = a.open("/hot")
            assert a.pread(fd, 4, 0) == b"yyyy"  # acquisition is lazy
            a.close(fd)
            a.release_all()
            assert kernel.stats.delegated_releases == 1
            time.sleep(0.05)  # past the window
            d0 = kernel.stats.deferred_verifications
            fd = a.open("/hot")
            assert a.pread(fd, 4, 0) == b"yyyy"
            a.close(fd)
            assert kernel.stats.deferred_verifications == d0 + 1
            assert kernel.stats.delegation_hits == 0

    def test_corruption_under_delegation_caught_at_revoke(self):
        """An in-window corruption is caught when the lease is revoked, and
        the rollback discards the never-verified delegated write."""
        with make_volume() as vol:
            kernel = vol.kernel
            a = vol.session("app1", uid=1000)
            b = vol.session("app2", uid=1000)
            a.write_file("/hot", b"good" * 1024)
            a.release_all()
            fd = a.open("/hot")
            a.pwrite(fd, b"dirty-delegated-write", 0)
            a.close(fd)
            a.release_all()  # deferred — nobody has verified the pwrite
            ino = hot_ino(kernel)
            rec = kernel.core.read_inode(ino)
            rec.uid = 4242  # a LibFS may never change ownership (§4)
            kernel.core.write_inode(ino, rec)
            with pytest.raises(CorruptionDetected):
                b.open("/hot")
            assert kernel.stats.rollbacks >= 1
            # Rolled back to the pre-dirty snapshot: the delegated write is
            # gone along with the corruption.
            assert b.read_file("/hot")[:4] == b"good"
            b.release_all()

    def test_drain_on_close_leaves_clean_volume(self):
        vol = make_volume()
        with vol:
            a = vol.session("app1", uid=1000)
            for i in range(4):
                a.write_file(f"/f{i}", b"z" * 4096)
            a.release_all()
            for i in range(4):
                fd = a.open(f"/f{i}")
                assert a.pread(fd, 1, 0) == b"z"  # acquisition is lazy
                a.close(fd)
            a.release_all()
            assert len(vol.kernel._deferred) >= 1
            drained = vol.quiesce()
            assert drained >= 1
            assert not vol.kernel._deferred
            report = vol.fsck()
            assert report.clean, report.summary()
        # Closing the volume (sessions shut down) leaves nothing deferred.
        assert not vol.kernel._deferred

    def test_session_shutdown_drains_own_delegations(self):
        with make_volume() as vol:
            kernel = vol.kernel
            with vol.session("app1", uid=1000) as a:
                a.write_file("/hot", b"w" * 4096)
                a.release_all()
                fd = a.open("/hot")
                assert a.pread(fd, 1, 0) == b"w"  # acquisition is lazy
                a.close(fd)
                a.release_all()
                assert kernel._deferred
            assert not kernel._deferred  # app_shutdown verified them
