"""End-to-end POSIX-like behaviour of the ArckFS+ LibFS."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    Exists,
    InvalidArgument,
    IsADir,
    NameTooLong,
    NoEntry,
    NotADir,
    NotEmpty,
    WouldLoop,
)
from repro.pm.layout import ITYPE_DIR, ITYPE_FILE


class TestFiles:
    def test_create_write_read(self, fs):
        fd = fs.creat("/f")
        assert fs.pwrite(fd, b"abc", 0) == 3
        assert fs.pread(fd, 10, 0) == b"abc"

    def test_create_existing_fails(self, fs):
        fs.close(fs.creat("/f"))
        with pytest.raises(Exists):
            fs.creat("/f")

    def test_open_missing_fails(self, fs):
        with pytest.raises(NoEntry):
            fs.open("/nope")

    def test_open_create_flag(self, fs):
        fd = fs.open("/f", create=True)
        assert fs.stat("/f").itype == ITYPE_FILE
        fs.close(fd)

    def test_sequential_write_and_read(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"hello ")
        fs.write(fd, b"world")
        fs.lseek(fd, 0)
        assert fs.read(fd, 6) == b"hello "
        assert fs.read(fd, 5) == b"world"
        assert fs.read(fd, 5) == b""

    def test_overwrite_in_place(self, fs):
        fd = fs.creat("/f")
        fs.pwrite(fd, b"x" * 100, 0)
        fs.pwrite(fd, b"YY", 10)
        data = fs.pread(fd, 100, 0)
        assert data[10:12] == b"YY" and data[:10] == b"x" * 10
        assert fs.stat("/f").size == 100

    def test_multipage_write(self, fs):
        fd = fs.creat("/big")
        payload = bytes(i % 251 for i in range(3 * 4096 + 123))
        fs.pwrite(fd, payload, 0)
        assert fs.pread(fd, len(payload) + 10, 0) == payload

    def test_sparse_hole_reads_zero(self, fs):
        fd = fs.creat("/f")
        fs.pwrite(fd, b"end", 10000)
        data = fs.pread(fd, 10003, 0)
        assert data[:10000] == b"\0" * 10000
        assert data[10000:] == b"end"

    def test_read_past_eof(self, fs):
        fd = fs.creat("/f")
        fs.pwrite(fd, b"ab", 0)
        assert fs.pread(fd, 10, 1) == b"b"
        assert fs.pread(fd, 10, 2) == b""
        assert fs.pread(fd, 10, 100) == b""

    def test_truncate_shrink(self, fs):
        fd = fs.creat("/f")
        fs.pwrite(fd, b"q" * 8192, 0)
        fs.truncate("/f", 4096)
        assert fs.stat("/f").size == 4096
        assert fs.pread(fd, 10000, 0) == b"q" * 4096

    def test_truncate_extend_logical(self, fs):
        fd = fs.creat("/f")
        fs.pwrite(fd, b"a", 0)
        fs.truncate("/f", 100)
        assert fs.stat("/f").size == 100
        assert fs.pread(fd, 100, 0) == b"a" + b"\0" * 99

    def test_truncate_by_4k_loop(self, fs):
        """The DWTL workload's primitive: shrink a file 4 KiB at a time."""
        fd = fs.creat("/f")
        fs.pwrite(fd, b"z" * (16 * 4096), 0)
        size = 16 * 4096
        while size > 0:
            size -= 4096
            fs.truncate("/f", size)
            assert fs.stat("/f").size == size

    def test_fsync_returns_immediately(self, fs):
        fd = fs.creat("/f")
        fs.fsync(fd)  # §2.2: everything already persisted synchronously

    def test_close_invalidates_fd(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        with pytest.raises(BadFileDescriptor):
            fs.pread(fd, 1, 0)
        with pytest.raises(BadFileDescriptor):
            fs.close(fd)

    def test_unlink_removes(self, fs):
        fs.close(fs.creat("/f"))
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(NoEntry):
            fs.unlink("/f")

    def test_unlink_frees_pages(self, fsx):
        _dev, kernel, fs = fsx
        # Warm the root's log tail first: that page legitimately persists.
        fs.close(fs.creat("/warm"))
        fs.unlink("/warm")
        before = kernel.alloc.free_pages()
        fd = fs.creat("/f")
        fs.pwrite(fd, b"x" * (8 * 4096), 0)
        fs.close(fd)
        assert kernel.alloc.free_pages() < before
        fs.unlink("/f")
        assert kernel.alloc.free_pages() == before

    def test_inode_reuse_bumps_generation(self, fsx):
        _dev, kernel, fs = fsx
        fs.close(fs.creat("/f1"))
        g1 = fs.stat("/f1").gen
        ino1 = fs.stat("/f1").ino
        fs.unlink("/f1")
        fs.close(fs.creat("/f2"))
        s2 = fs.stat("/f2")
        if s2.ino == ino1:
            assert s2.gen > g1


class TestDirs:
    def test_mkdir_and_nested(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.mkdir("/a/b/c")
        assert fs.readdir("/a/b") == ["c"]
        assert fs.stat("/a/b/c").itype == ITYPE_DIR

    def test_mkdir_existing_fails(self, fs):
        fs.mkdir("/a")
        with pytest.raises(Exists):
            fs.mkdir("/a")

    def test_mkdir_missing_parent_fails(self, fs):
        with pytest.raises(NoEntry):
            fs.mkdir("/no/such")

    def test_rmdir_empty(self, fs):
        fs.mkdir("/a")
        fs.rmdir("/a")
        assert not fs.exists("/a")

    def test_rmdir_nonempty_fails(self, fs):
        fs.mkdir("/a")
        fs.close(fs.creat("/a/f"))
        with pytest.raises(NotEmpty):
            fs.rmdir("/a")

    def test_rmdir_file_fails(self, fs):
        fs.close(fs.creat("/f"))
        with pytest.raises(NotADir):
            fs.rmdir("/f")

    def test_unlink_dir_fails(self, fs):
        fs.mkdir("/a")
        with pytest.raises(IsADir):
            fs.unlink("/a")

    def test_readdir_many(self, fs):
        fs.mkdir("/d")
        names = sorted(f"f{i:03d}" for i in range(200))
        for n in names:
            fs.close(fs.creat(f"/d/{n}"))
        assert fs.readdir("/d") == names

    def test_file_component_in_path_fails(self, fs):
        fs.close(fs.creat("/f"))
        with pytest.raises(NotADir):
            fs.stat("/f/x")

    def test_stat_root(self, fs):
        st = fs.stat("/")
        assert st.itype == ITYPE_DIR and st.ino == 0


class TestRename:
    def test_rename_within_dir(self, fs):
        fs.close(fs.creat("/old"))
        fs.rename("/old", "/new")
        assert fs.exists("/new") and not fs.exists("/old")

    def test_rename_preserves_content(self, fs):
        fd = fs.creat("/old")
        fs.pwrite(fd, b"payload", 0)
        fs.close(fd)
        fs.mkdir("/d")
        fs.rename("/old", "/d/new")
        fd = fs.open("/d/new")
        assert fs.pread(fd, 100, 0) == b"payload"

    def test_rename_to_existing_fails(self, fs):
        fs.close(fs.creat("/a"))
        fs.close(fs.creat("/b"))
        with pytest.raises(Exists):
            fs.rename("/a", "/b")

    def test_rename_missing_source_fails(self, fs):
        with pytest.raises(NoEntry):
            fs.rename("/nope", "/x")

    def test_rename_dir_into_itself_fails(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        with pytest.raises(WouldLoop):
            fs.rename("/a", "/a/b/a2")

    def test_rename_noop_same_path(self, fs):
        fs.close(fs.creat("/a"))
        fs.rename("/a", "/a")
        assert fs.exists("/a")

    def test_rename_root_fails(self, fs):
        with pytest.raises(InvalidArgument):
            fs.rename("/", "/x")

    def test_directory_relocation_full(self, fsx):
        _dev, kernel, fs = fsx
        fs.mkdir("/src")
        fs.mkdir("/src/d")
        for i in range(5):
            fs.close(fs.creat(f"/src/d/f{i}"))
        fs.mkdir("/dst")
        fs.rename("/src/d", "/dst/d")
        assert fs.readdir("/src") == []
        assert fs.readdir("/dst") == ["d"]
        assert len(fs.readdir("/dst/d")) == 5
        fs.release_all()
        assert kernel.audit_tree() == []


class TestPaths:
    def test_relative_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.stat("relative")

    def test_dot_components_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.stat("/a/../b")

    def test_long_name_rejected(self, fs):
        with pytest.raises(NameTooLong):
            fs.creat("/" + "x" * 300)

    def test_trailing_slash_normalised(self, fs):
        fs.mkdir("/a")
        assert fs.stat("/a/").itype == ITYPE_DIR

    def test_double_slash_normalised(self, fs):
        fs.mkdir("/a")
        fs.close(fs.creat("/a//f"))
        assert fs.exists("/a/f")


class TestOwnershipVerbs:
    def test_commit_keeps_ownership(self, fsx):
        _dev, kernel, fs = fsx
        fs.mkdir("/d")
        fs.commit_path("/")
        fs.commit_path("/d")
        # Still attached: another write needs no re-acquire.
        fs.close(fs.creat("/d/f"))
        assert kernel.acquisitions  # ownership retained

    def test_release_then_reuse(self, fsx):
        _dev, kernel, fs = fsx
        fs.mkdir("/d")
        fs.close(fs.creat("/d/f"))
        fs.release_all()
        assert not kernel.acquisitions
        # Transparent re-acquire on next use.
        assert fs.readdir("/d") == ["f"]
        fs.close(fs.creat("/d/g"))
        assert sorted(fs.readdir("/d")) == ["f", "g"]

    def test_released_reads_use_cached_state(self, fsx):
        """§4.3: stat/readdir served from cached aux after release."""
        _dev, kernel, fs = fsx
        fs.mkdir("/d")
        fs.close(fs.creat("/d/f"))
        fs.release_all()
        acquires_before = kernel.stats.acquires
        assert fs.stat("/d/f").itype == ITYPE_FILE
        assert fs.readdir("/d") == ["f"]
        assert kernel.stats.acquires == acquires_before
