"""The multi-inode LibFS rules of §3.2, including the Figure 2 scenario.

Rule (1): a newly created inode can be committed/released only after its
parent; Rule (2): after relocating a non-empty directory, the new parent
must be committed/released before the old parent; Rule (3): before renaming
under a *newly created* sibling, commit the new parent first — breaking the
Rule (1)/(2) circular dependency.
"""

import pytest

from repro.core.config import ARCKFS_PLUS
from repro.errors import CorruptionDetected
from tests.conftest import build_fs

# ArckFS+ kernel semantics but a LibFS that does NOT follow the rename
# protocol — so the ordering rules are exercised manually.
MANUAL = ARCKFS_PLUS.with_patch(rename_commit_protocol=False, name="manual-rules")


class TestRule1:
    def test_child_release_before_parent_fails(self):
        _dev, _kc, fs = build_fs(MANUAL)
        fs.mkdir("/d")
        # /d has never been verified: from the kernel's view it is
        # disconnected from the root (I3).
        with pytest.raises(CorruptionDetected, match="not connected"):
            fs.release_path("/d")

    def test_child_commit_before_parent_fails(self):
        _dev, _kc, fs = build_fs(MANUAL)
        fs.mkdir("/d")
        with pytest.raises(CorruptionDetected, match="not connected"):
            fs.commit_path("/d")

    def test_parent_first_then_child_passes(self):
        _dev, kc, fs = build_fs(MANUAL)
        fs.mkdir("/d")
        fs.commit_path("/")  # registers /d
        fs.release_path("/d")  # now verifiable
        assert b"d" in kc.shadow[0].children

    def test_deep_chain_must_release_top_down(self):
        _dev, kc, fs = build_fs(MANUAL)
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.mkdir("/a/b/c")
        for path in ("/", "/a", "/a/b"):
            fs.commit_path(path)
        fs.release_path("/a/b/c")
        assert len(kc.shadow) == 4


class TestRule2:
    def _relocated(self, fs):
        fs.mkdir("/p1")
        fs.mkdir("/p1/d")
        fs.close(fs.creat("/p1/d/f"))
        fs.mkdir("/p2")
        fs.release_all()
        # Manual relocation of non-empty /p1/d into /p2 (no protocol —
        # rename() itself still takes/releases the lease around the apply).
        fs.rename("/p1/d", "/p2/d")

    def test_old_parent_first_fails(self):
        _dev, _kc, fs = build_fs(MANUAL)
        self._relocated(fs)
        with pytest.raises(CorruptionDetected, match="I3"):
            fs.commit_path("/p1")

    def test_new_parent_first_passes(self):
        _dev, kc, fs = build_fs(MANUAL)
        self._relocated(fs)
        # The verifier's check (3) requires the lease at the moment the new
        # parent's verification re-targets the directory parent pointer.
        fs.kernel.rename_lock_acquire(fs.app_id)
        fs.commit_path("/p2")  # re-targets d's shadow parent pointer
        fs.kernel.rename_lock_release(fs.app_id)
        fs.commit_path("/p1")  # missing child now reads as renamed-away
        fs.release_all()
        p2 = kc.shadow[kc.shadow[0].children[b"p2"]]
        assert b"d" in p2.children


class TestFigure2:
    """Rename a non-empty directory under a newly created sibling."""

    def _setup(self, fs):
        fs.mkdir("/dir0")
        fs.mkdir("/dir0/dir2")
        fs.close(fs.creat("/dir0/dir2/f"))
        fs.release_all()
        # dir1 is the newly created sibling; dir0 is re-acquired by mkdir.
        fs.mkdir("/dir0/dir1")

    def test_circular_dependency_without_rule3(self):
        """Committing either dir0 or dir1 first fails: the deadlock of
        Figure 2 — dir1 blocked by Rule (1), dir0 blocked by Rule (2)."""
        _dev, _kc, fs = build_fs(MANUAL)
        self._setup(fs)
        fs.rename("/dir0/dir2", "/dir0/dir1/dir2")

        # dir1 first: it was never registered (dir0 not committed since its
        # creation) -> Rule (1) violation.
        with pytest.raises(CorruptionDetected, match="not connected"):
            fs.commit_path("/dir0/dir1")
        # dir0 first: dir2 is missing and still parented here -> Rule (2).
        with pytest.raises(CorruptionDetected, match="I3"):
            fs.commit_path("/dir0")

    def test_rule3_breaks_the_cycle(self):
        """Committing dir0 then dir1 *before* the rename resolves it."""
        _dev, kc, fs = build_fs(MANUAL)
        self._setup(fs)
        fs.commit_path("/dir0")  # registers dir1 (Rule 1 satisfied)
        fs.commit_path("/dir0/dir1")  # Rule (3): new parent verifiable
        fs.rename("/dir0/dir2", "/dir0/dir1/dir2")
        fs.kernel.rename_lock_acquire(fs.app_id)
        fs.commit_path("/dir0/dir1")  # Rule (2): new parent first
        fs.kernel.rename_lock_release(fs.app_id)
        fs.commit_path("/dir0")
        fs.release_all()
        dir1 = kc.shadow[kc.shadow[kc.shadow[0].children[b"dir0"]].children[b"dir1"]]
        assert b"dir2" in dir1.children

    def test_full_protocol_handles_it_automatically(self):
        """The ArckFS+ LibFS performs the whole dance inside rename()."""
        _dev, kc, fs = build_fs(ARCKFS_PLUS)
        self._setup(fs)
        fs.rename("/dir0/dir2", "/dir0/dir1/dir2")
        fs.release_all()
        dir0 = kc.shadow[kc.shadow[0].children[b"dir0"]]
        dir1 = kc.shadow[dir0.children[b"dir1"]]
        assert b"dir2" in dir1.children
        assert b"dir2" not in dir0.children
