"""Integration tests: the observability layer against the real stack.

The headline regression here is the paper's architectural claim itself:
once a LibFS owns a file, data-path operations never enter the kernel —
``kernel.crossings`` must stay exactly zero across a pread/pwrite loop,
and must rise as soon as ownership moves (release / re-acquire).
"""

import json

import pytest

from repro import obs
from repro.obs.driver import ObservedRun, resolve, run_observed
from repro.errors import InvalidArgument


def _crossings() -> int:
    return obs.metrics.counter_total("kernel.crossings")


# --------------------------------------------------------------------------- #
# The zero-crossing invariant
# --------------------------------------------------------------------------- #


def test_pure_data_path_has_zero_kernel_crossings(fs):
    fd = fs.creat("/data.bin")
    fs.pwrite(fd, b"x" * 4096, 0)  # first write attaches + allocates

    obs.reset()
    obs.enable()
    before = _crossings()
    for i in range(32):
        fs.pwrite(fd, bytes([i % 256]) * 512, (i % 8) * 512)
        assert len(fs.pread(fd, 512, (i % 8) * 512)) == 512
    obs.disable()

    assert _crossings() - before == 0, (
        "data-path ops on an owned file must not enter the kernel"
    )
    # ...but the LibFS itself saw and timed every syscall.
    snap = obs.metrics.snapshot()
    assert snap["counters"]["libfs.syscall.count{op=pwrite}"] == 32
    assert snap["counters"]["libfs.syscall.count{op=pread}"] == 32
    assert snap["histograms"]["libfs.syscall.ns"]["count"] == 64


def test_ownership_transfer_crosses_the_kernel(fs):
    fd = fs.creat("/shared.bin")
    fs.pwrite(fd, b"y" * 1024, 0)
    fs.close(fd)
    fs.commit_path("/")                   # register the new file (Rule 1)

    obs.reset()
    obs.enable()
    fs.release_path("/shared.bin")        # ownership back to the kernel
    fd = fs.open("/shared.bin")           # re-acquire → mmap crossing
    assert fs.pread(fd, 4, 0) == b"yyyy"
    obs.disable()

    assert _crossings() > 0
    snap = obs.metrics.snapshot()["counters"]
    assert snap.get("kernel.crossings{reason=ownership_transfer}", 0) >= 1
    assert snap.get("kernel.crossings{reason=mmap}", 0) >= 1


def test_syscall_latency_histograms_populated(fs):
    obs.reset()
    obs.enable()
    fd = fs.creat("/lat.bin")
    fs.pwrite(fd, b"z" * 256, 0)
    fs.close(fd)
    obs.disable()

    hists = obs.metrics.snapshot()["histograms"]
    for op in ("creat", "pwrite", "close"):
        summary = hists[f"libfs.syscall.{op}.ns"]
        assert summary["count"] == 1
        assert summary["p50"] > 0
    agg = hists["libfs.syscall.ns"]
    assert agg["count"] == 3
    assert agg["p99"] >= agg["p50"] > 0


def test_lock_and_failpoint_metrics_surface(fs):
    obs.reset()
    obs.enable()
    fd = fs.creat("/locks.bin")
    fs.pwrite(fd, b"a" * 128, 0)
    obs.disable()

    snap = obs.metrics.snapshot()["counters"]
    assert snap.get("lock.acquisitions", 0) > 0
    assert snap.get("lock.wait_ns", 0) >= 0
    # creat passes §4.4's failpoint site even with no hook installed.
    assert snap.get("failpoints.hit{name=creat.pre_core_append}", 0) == 1


def test_disabled_instrumentation_records_nothing(fs):
    assert not obs.enabled
    fd = fs.creat("/quiet.bin")
    fs.pwrite(fd, b"q" * 64, 0)
    fs.close(fd)
    snap = obs.metrics.snapshot()
    assert snap["counters"] == {} and snap["histograms"] == {}
    assert obs.tracer.events() == []


def test_tracing_nests_kernel_instants_inside_syscall_spans(fs):
    obs.reset()
    obs.enable(trace=True)
    fd = fs.creat("/traced.bin")
    fs.close(fd)
    obs.disable()

    evs = obs.tracer.events()
    spans = [e for e in evs if e["ph"] == "X"]
    instants = [e for e in evs if e["ph"] == "i"]
    assert any(e["name"] == "creat" and e["cat"] == "syscall" for e in spans)
    assert any(e["name"].startswith("kernel.") for e in instants)


# --------------------------------------------------------------------------- #
# The observed-run driver
# --------------------------------------------------------------------------- #


def test_run_observed_fxmark_metadata():
    run = run_observed("fxmark:MWCL", threads=1, ops_per_thread=8)
    assert isinstance(run, ObservedRun)
    assert run.ops == 8
    c = run.metrics["counters"]
    assert c["kernel.crossings"] > 0          # creat allocates inodes
    assert c["pm.fences"] > 0
    assert "lock.wait_ns" in c
    assert run.metrics["histograms"]["libfs.syscall.ns"]["count"] >= 8
    assert not obs.enabled                    # driver restores the flag


def test_run_observed_data_workload_zero_crossing_tail():
    """After preparation, an fxmark data workload is pure LibFS."""
    run = run_observed("fxmark:DRBL", threads=1, ops_per_thread=16)
    c = run.metrics["counters"]
    # All crossings happened during prepare (measured window only covers
    # the op loop) — reads of an owned file never cross.
    assert c["kernel.crossings"] == 0
    # The driver runs the op loop under ambient {app_id, volume} labels,
    # and the base name still aggregates across every op and label set.
    assert c["libfs.syscall.count{app_id=obs,op=pread,volume=obs}"] == 16
    assert c["libfs.syscall.count"] >= 16


def test_run_observed_multithreaded():
    run = run_observed("fxmark:MWCM", threads=4, ops_per_thread=4)
    assert run.ops == 16
    assert run.metrics["gauges"]["run.threads"] == 4
    assert run.metrics["counters"]["libfs.syscall.count"] >= 16


def test_run_observed_filebench():
    run = run_observed("filebench:varmail", threads=1, ops_per_thread=4)
    c = run.metrics["counters"]
    assert c["libfs.syscall.count"] > 0
    assert run.spec == "filebench:varmail-shared"


def test_resolve_rejects_bad_specs():
    for bad in ("nope", "fxmark:", "fxmark:NOPE", "filebench:nope",
                "filebench:varmail-sideways", "what:ever"):
        with pytest.raises(InvalidArgument):
            resolve(bad)


def test_run_observed_rejects_unknown_fs():
    with pytest.raises(InvalidArgument):
        run_observed("fxmark:MWCL", fs="zfs")


# --------------------------------------------------------------------------- #
# CLI end-to-end
# --------------------------------------------------------------------------- #


def test_cli_trace_writes_valid_chrome_trace(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.json"
    assert main(["trace", "fxmark:MWCL", "--out", str(out), "--ops", "8"]) == 0
    doc = json.loads(out.read_text())
    evs = doc["traceEvents"]
    assert evs[0]["ph"] == "M"
    assert any(e["ph"] == "X" and e["cat"] == "syscall" for e in evs)
    assert "wrote" in capsys.readouterr().out


def test_cli_trace_jsonl(tmp_path):
    from repro.cli import main
    from repro.obs.trace import read_jsonl

    out = tmp_path / "t.jsonl"
    assert main(["trace", "fxmark:MWCL", "--out", str(out),
                 "--format", "jsonl", "--ops", "4"]) == 0
    evs = read_jsonl(str(out))
    assert any(e["ph"] == "X" for e in evs)


def test_cli_metrics_prints_headline_counters(capsys):
    from repro.cli import main

    assert main(["metrics", "fxmark:MWCL", "--ops", "8"]) == 0
    out = capsys.readouterr().out
    for needle in ("kernel.crossings", "pm.fences", "lock.wait_ns", "p95="):
        assert needle in out


def test_cli_metrics_json(capsys):
    from repro.cli import main

    assert main(["metrics", "fxmark:MWCL", "--ops", "4", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "fxmark:MWCL"
    assert doc["metrics"]["counters"]["kernel.crossings"] >= 0
