"""The §3.1 attack: malicious directory relocation cannot delete protected
files.  "Trio correctly handles this scenario by detecting corruption at
Step ④ and rolling back dir1, preventing the deletion of dir3 and file1."

App1 (malicious, uid 1000) has write access to dir1 and dir2 but NOT to
dir3 or file1.  It relocates dir3 into dir2 without following the rules,
releases dir1 (verification fails, dir1 rolls back with dir3 intact),
then corrupts dir2 and releases it (verification fails, dir2 rolls back to
empty).  App2 (well-behaved, uid 2000, the owner) sees everything intact.

The paper found *no inherent vulnerability* in Trio: the attack fails under
both the ArckFS and the ArckFS+ verifier.
"""

import pytest

from repro.core.config import ARCKFS, ARCKFS_PLUS
from repro.errors import CorruptionDetected
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice

FILE_CONTENT = b"precious payload that must survive"


def setup_world(config):
    device = PMDevice(16 * 1024 * 1024)
    kernel = KernelController.fresh(device, inode_count=256, config=config)
    owner = LibFS(kernel, "app2", uid=2000, config=config)
    # World-writable dir1/dir2; dir3/file1 writable only by app2.
    owner.mkdir("/dir1", mode=0o777)
    owner.mkdir("/dir1/dir3", mode=0o755)
    fd = owner.creat("/dir1/dir3/file1", mode=0o644)
    owner.pwrite(fd, FILE_CONTENT, 0)
    owner.close(fd)
    owner.mkdir("/dir2", mode=0o777)
    owner.release_all()
    return device, kernel, owner


def corrupt_dir(attacker: LibFS, path: str) -> None:
    """Scribble over the directory's log pages through the mapping."""
    mi = attacker._attach(attacker.stat(path).ino, write=True)
    cs = attacker._cs(mi)
    for page_no in cs.dir_pages(mi.record):
        off = attacker.geom.page_off(page_no)
        mi.mapping.store(off, b"\xde\xad\xbe\xef" * 1024)
        mi.mapping.persist(off, 4096)


@pytest.mark.parametrize("config", [ARCKFS, ARCKFS_PLUS], ids=["arckfs", "arckfs+"])
def test_attack_is_foiled(config):
    device, kernel, owner = setup_world(config)
    # The attacker's LibFS does not follow the multi-inode rules.
    attacker = LibFS(kernel, "app1", uid=1000,
                     config=config.with_patch(rename_commit_protocol=False,
                                              global_rename_lock=False,
                                              name="malicious"))

    # ① acquire dir1 and dir2 — ② move dir3 into dir2 (no commits).
    attacker.rename("/dir1/dir3", "/dir2/dir3")

    dir2_ino = kernel.shadow[0].children[b"dir2"]

    # ④ release dir1 -> verification fails (I3), dir1 rolls back.
    with pytest.raises(CorruptionDetected, match="I3"):
        attacker.release_path("/dir1")
    attacker.release_ino(0)  # hand the root back (ownership is exclusive)

    # ⑤ App2 acquires dir1 and still sees dir3 and file1.
    assert owner.readdir("/dir1") == ["dir3"]
    assert owner.readdir("/dir1/dir3") == ["file1"]
    owner.release_all()

    # ⑥ App1 corrupts dir2 and releases it -> verification fails, dir2
    # rolls back to its initial (empty) state.
    corrupt_dir(attacker, "/dir2")
    with pytest.raises(CorruptionDetected):
        attacker.release_ino(dir2_ino)
    attacker.release_ino(0)

    # The protected data is intact and readable by its owner.
    fd = owner.open("/dir1/dir3/file1")
    assert owner.pread(fd, 1024, 0) == FILE_CONTENT
    owner.close(fd)
    assert owner.readdir("/dir2") == []
    assert kernel.audit_tree() == []


@pytest.mark.parametrize("config", [ARCKFS_PLUS], ids=["arckfs+"])
def test_attack_variant_release_dir2_first(config):
    """Releasing the corrupted-new-parent side first also fails: the §4.1
    checks (no rename lease held) reject the incoming relocation."""
    device, kernel, owner = setup_world(config)
    attacker = LibFS(kernel, "app1", uid=1000,
                     config=config.with_patch(rename_commit_protocol=False,
                                              global_rename_lock=False,
                                              name="malicious"))
    attacker.rename("/dir1/dir3", "/dir2/dir3")
    with pytest.raises(CorruptionDetected, match="rename"):
        attacker.release_path("/dir2")
    attacker.release_ino(0)
    with pytest.raises(CorruptionDetected, match="I3"):
        attacker.release_path("/dir1")
    assert owner.readdir("/dir1/dir3") == ["file1"]
    assert owner.readdir("/dir2") == []


def test_attacker_cannot_acquire_protected_inode():
    device, kernel, owner = setup_world(ARCKFS_PLUS)
    attacker = LibFS(kernel, "app1", uid=1000, config=ARCKFS_PLUS)
    from repro.errors import PermissionDenied

    dir3_ino = owner.stat("/dir1/dir3").ino
    owner.release_all()
    with pytest.raises(PermissionDenied):
        kernel.acquire(attacker.app_id, dir3_ino, write=True)
    # Read access is fine (mode 755).
    kernel.acquire(attacker.app_id, dir3_ino, write=False)
