"""The extent-batched data path: correctness and persist-cost.

``pwrite`` under ``extent_batched_io`` coalesces stores into one
non-temporal stream per contiguous page run and skips the durable pre-zero
of pages it fully overwrites.  These tests pin the equivalence with the
legacy per-page path and the >= 4x persist-call reduction the batching is
for.
"""

import pytest

from repro.core.config import ARCKFS_PLUS, ArckConfig
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.array import PMArray
from repro.pm.crash import CrashSim
from repro.pm.device import PMDevice
from repro.pm.layout import PAGE_SIZE

LEGACY = ArckConfig(
    name="arckfs+legacy-io",
    **{k: getattr(ARCKFS_PLUS, k) for k in (
        "rename_commit_protocol", "shadow_parent_pointer",
        "fence_before_marker", "locked_release", "extended_bucket_lock",
        "rcu_buckets", "global_rename_lock", "descendant_check")},
    alloc_pool_pages=0,
    extent_batched_io=False,
)


def build(config, size=8 * 1024 * 1024):
    device = PMDevice(size, crash_tracking=False)
    kernel = KernelController.fresh(device, inode_count=128, config=config)
    return device, LibFS(kernel, "extent-io", uid=0, config=config)


@pytest.fixture(params=[ARCKFS_PLUS, LEGACY], ids=["extent", "legacy"])
def anyfs(request):
    return build(request.param)[1]


MiB = 1 << 20


class TestCorrectness:
    def test_one_mib_roundtrip(self, anyfs):
        payload = bytes(range(256)) * (MiB // 256)
        fd = anyfs.creat("/big")
        assert anyfs.pwrite(fd, payload, 0) == MiB
        assert anyfs.pread(fd, MiB, 0) == payload

    def test_hole_reads_zeros(self, anyfs):
        fd = anyfs.creat("/holey")
        off = 10 * PAGE_SIZE + 123
        anyfs.pwrite(fd, b"tail", off)
        assert anyfs.pread(fd, off, 0) == b"\0" * off
        assert anyfs.pread(fd, 4, off) == b"tail"

    def test_unaligned_page_straddle(self, anyfs):
        fd = anyfs.creat("/straddle")
        payload = b"\xc3" * (3 * PAGE_SIZE)
        anyfs.pwrite(fd, payload, 1000)
        assert anyfs.pread(fd, len(payload), 1000) == payload
        assert anyfs.pread(fd, 1000, 0) == b"\0" * 1000

    def test_partial_overwrite_preserves_rest(self, anyfs):
        fd = anyfs.creat("/part")
        anyfs.pwrite(fd, b"a" * (2 * PAGE_SIZE), 0)
        anyfs.pwrite(fd, b"b" * 100, PAGE_SIZE - 50)
        expect = (b"a" * (PAGE_SIZE - 50) + b"b" * 100 +
                  b"a" * (PAGE_SIZE - 50))
        assert anyfs.pread(fd, 2 * PAGE_SIZE, 0) == expect

    def test_extent_and_legacy_media_agree(self):
        """Same op stream, byte-identical file contents either way."""
        ops = [
            (b"x" * (64 * 1024), 0),
            (b"y" * 5000, 3 * PAGE_SIZE + 17),
            (b"z" * PAGE_SIZE, 100 * PAGE_SIZE),
            (b"w" * 10, 5),
        ]
        images = []
        for config in (ARCKFS_PLUS, LEGACY):
            _device, fs = build(config)
            fd = fs.creat("/f")
            for data, off in ops:
                fs.pwrite(fd, data, off)
            size = fs.stat("/f").size
            images.append((size, fs.pread(fd, size, 0)))
        assert images[0] == images[1]


class TestPersistCost:
    def test_persist_calls_drop_4x_per_mib(self):
        payload = b"\x5a" * MiB
        fences = {}
        extents = {}
        for name, config in (("legacy", LEGACY), ("extent", ARCKFS_PLUS)):
            device, fs = build(config)
            fd = fs.creat("/big")
            before = device.stats.fences
            fs.pwrite(fd, payload, 0)
            fences[name] = device.stats.fences - before
            extents[name] = fs.stats.write_extents
        assert fences["legacy"] / fences["extent"] >= 4.0, fences
        # 256 physically contiguous fresh pages coalesce into one extent.
        assert extents["extent"] == 1
        assert extents["legacy"] == 0

    def test_fresh_full_pages_skip_prezero(self):
        """A fully-overwritten fresh page costs no durable pre-zero: the
        whole 1 MiB write needs only a handful of fences."""
        device, fs = build(ARCKFS_PLUS)
        fd = fs.creat("/big")
        before = device.stats.fences
        fs.pwrite(fd, b"q" * MiB, 0)
        assert device.stats.fences - before <= 16


def build_striped(devices=2, stripe_pages=2, size=8 * 1024 * 1024,
                  crash_tracking=False):
    device = PMArray(size, devices=devices, stripe_pages=stripe_pages,
                     crash_tracking=crash_tracking)
    kernel = KernelController.fresh(device, inode_count=128,
                                    config=ARCKFS_PLUS)
    return device, LibFS(kernel, "extent-io", uid=0, config=ARCKFS_PLUS)


class TestStriped:
    """The extent path over a striped 2-device array."""

    def test_roundtrip_and_fanout(self):
        device, fs = build_striped()
        payload = bytes(range(256)) * (MiB // 256)
        fd = fs.creat("/big")
        assert fs.pwrite(fd, payload, 0) == MiB
        assert fs.pread(fd, MiB, 0) == payload
        # Striping is real: both members stored a comparable share.
        stored = [s.bytes_stored for s in device.device_stats]
        assert all(b > MiB // 4 for b in stored), stored

    def test_contents_agree_with_flat_volume(self):
        """Same op stream, identical file contents, striped or flat."""
        ops = [
            (b"x" * (64 * 1024), 0),
            (b"y" * 5000, 3 * PAGE_SIZE + 17),
            (b"z" * PAGE_SIZE, 100 * PAGE_SIZE),
            (b"w" * 10, 5),
        ]
        images = []
        for maker in (lambda: build(ARCKFS_PLUS),
                      lambda: build_striped(devices=2, stripe_pages=4)):
            _device, fs = maker()
            fd = fs.creat("/f")
            for data, off in ops:
                fs.pwrite(fd, data, off)
            size = fs.stat("/f").size
            images.append((size, fs.pread(fd, size, 0)))
        assert images[0] == images[1]

    def test_unaligned_straddle_across_stripe_units(self):
        _device, fs = build_striped(devices=2, stripe_pages=1)
        # stripe_pages=1 alternates devices every page, so this 3-page
        # write crosses a device boundary at every page edge.
        fd = fs.creat("/straddle")
        payload = b"\xc3" * (3 * PAGE_SIZE)
        fs.pwrite(fd, payload, 1000)
        assert fs.pread(fd, len(payload), 1000) == payload


class TestStripedCrash:
    """A torn multi-device extent write keeps the leak-only crash story."""

    def _torn_write(self):
        device, fs = build_striped(devices=2, stripe_pages=2,
                                   crash_tracking=True)
        fd = fs.creat("/doc")
        device.drain()  # narrow enumeration to the extent write itself
        # 4 pages at stripe 2 over 2 devices: the extent spans both
        # members, so the torn write has in-flight lines on each.
        fs.pwrite(fd, b"\x7e" * (4 * PAGE_SIZE), 0)
        return device

    def test_torn_extent_write_is_leak_only(self):
        from repro.fsck import TORN_CLASSES
        from repro.fsck.findings import (
            F_PAGE_DOUBLE_USE,
            F_PAGE_UNALLOCATED,
            F_STRIPE_LABEL,
            F_STRIPE_ORPHAN,
        )

        device = self._torn_write()
        sim = CrashSim(device)
        bad = TORN_CLASSES | {F_PAGE_UNALLOCATED, F_PAGE_DOUBLE_USE,
                              F_STRIPE_ORPHAN, F_STRIPE_LABEL}
        assert sim.find_fsck_violation(bad, sample=64) is None

    def test_torn_extent_write_is_repairable(self):
        device = self._torn_write()
        sim = CrashSim(device)
        assert sim.find_fsck_violation(repair=True, sample=16) is None
