"""Every shipped example must run clean end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = ["quickstart.py", "bughunt.py", "kvstore_demo.py",
            "sharing_demo.py", "webproxy_demo.py"]
EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_output_mentions_recovery():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "recovery report" in result.stdout
    assert "recovered content" in result.stdout


def test_bughunt_shows_table1_dichotomy():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "bughunt.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert out.count("MANIFESTED") >= 7  # six under arckfs + isolation demo
    assert out.count("not observed") >= 6  # none under arckfs+
