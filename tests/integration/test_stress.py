"""Concurrency stress: many real threads, no failpoints, no faults.

These are the 'rigorous stress testing protocols' the paper's conclusion
recommends: hammer the patched system with genuinely concurrent mixed
operations and assert (a) no simulated faults, (b) the final state is
exactly the surviving-operation set, (c) verification of everything
passes, (d) the shadow tree audits clean.
"""

import threading

from repro.errors import FSError
from tests.conftest import build_fs

THREADS = 8
OPS = 40


def run_threads(fn):
    errors = []

    def wrap(tid):
        try:
            fn(tid)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    ts = [threading.Thread(target=wrap, args=(t,)) for t in range(THREADS)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(60)
    assert not any(t.is_alive() for t in ts), "stress threads hung"
    if errors:
        raise errors[0]


class TestStress:
    def test_create_unlink_same_shared_dir(self):
        _dev, kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=4096)
        fs.mkdir("/shared")

        def worker(tid):
            for i in range(OPS):
                name = f"/shared/t{tid}_{i}"
                fs.close(fs.creat(name))
                if i % 2 == 0:
                    fs.unlink(name)

        run_threads(worker)
        survivors = fs.readdir("/shared")
        assert len(survivors) == THREADS * OPS // 2
        fs.release_all()
        fs.quiesce()
        assert kernel.audit_tree() == []

    def test_mixed_ops_private_dirs(self):
        _dev, kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=4096)
        for t in range(THREADS):
            fs.mkdir(f"/p{t}")

        def worker(tid):
            base = f"/p{tid}"
            for i in range(OPS):
                path = f"{base}/f{i}"
                fd = fs.creat(path)
                fs.pwrite(fd, f"payload-{tid}-{i}".encode(), 0)
                fs.close(fd)
                if i % 3 == 0:
                    fs.rename(path, f"{base}/r{i}")
                elif i % 3 == 1:
                    fs.unlink(path)

        run_threads(worker)
        unlinked = sum(1 for i in range(OPS) if i % 3 == 1)
        for t in range(THREADS):
            names = fs.readdir(f"/p{t}")
            assert len(names) == OPS - unlinked
            sample = next(n for n in names if n.startswith("r"))
            i = int(sample[1:])
            assert fs.read_file(f"/p{t}/{sample}") == f"payload-{t}-{i}".encode()
        fs.release_all()
        assert kernel.audit_tree() == []

    def test_readers_vs_writers_same_dir(self):
        """RCU-protected lookups racing creates/unlinks: readers never
        fault and never see impossible states."""
        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=4096)
        fs.mkdir("/d")
        for i in range(16):
            fs.close(fs.creat(f"/d/stable{i}"))
        stop = threading.Event()
        seen_wrong = []

        def writer(tid):
            for i in range(OPS):
                fs.close(fs.creat(f"/d/w{tid}_{i}"))
                fs.unlink(f"/d/w{tid}_{i}")
            stop.set()

        def reader(tid):
            while not stop.is_set():
                names = fs.readdir("/d")
                if not set(f"stable{i}" for i in range(16)) <= set(names):
                    seen_wrong.append(names)
                fs.stat(f"/d/stable{tid % 16}")

        errors = []

        def wrap(fn, tid):
            try:
                fn(tid)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        ts = [threading.Thread(target=wrap, args=(writer, t)) for t in range(2)]
        ts += [threading.Thread(target=wrap, args=(reader, t)) for t in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(60)
        assert not errors
        assert not seen_wrong

    def test_concurrent_release_and_ops(self):
        """Voluntary releases racing live operations (the §4.3 pattern)
        without failpoints: the patched system must never fault."""
        _dev, kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=4096)
        fs.mkdir("/d")
        fs.commit_path("/")
        stop = threading.Event()

        def churner(tid):
            for i in range(OPS):
                fs.close(fs.creat(f"/d/c{tid}_{i}"))
                fs.unlink(f"/d/c{tid}_{i}")
            stop.set()

        def releaser(_tid):
            while not stop.is_set():
                try:
                    fs.release_path("/d")
                except FSError:
                    pass

        errors = []

        def wrap(fn, tid):
            try:
                fn(tid)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        ts = [threading.Thread(target=wrap, args=(churner, t)) for t in range(3)]
        ts.append(threading.Thread(target=wrap, args=(releaser, 9)))
        for t in ts:
            t.start()
        for t in ts:
            t.join(120)
        assert not any(t.is_alive() for t in ts)
        assert not errors
        assert fs.readdir("/d") == []
        fs.release_all()
        assert kernel.audit_tree() == []

    def test_concurrent_file_writes_disjoint_regions(self):
        _dev, _kernel, fs = build_fs(size=64 * 1024 * 1024, inode_count=256)
        fd = fs.creat("/big")

        def worker(tid):
            for i in range(OPS):
                fs.pwrite(fd, bytes([tid + 1]) * 512, (tid * OPS + i) * 512)

        run_threads(worker)
        data = fs.pread(fd, THREADS * OPS * 512, 0)
        for tid in range(THREADS):
            for i in range(OPS):
                off = (tid * OPS + i) * 512
                assert data[off : off + 512] == bytes([tid + 1]) * 512
