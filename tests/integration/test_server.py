"""End-to-end tests for the multi-tenant volume server.

Each test spins a real :class:`~repro.server.VolumeServer` on an ephemeral
localhost port inside ``asyncio.run`` (the test process has no ambient
event loop — no pytest-asyncio dependency) and talks to it over TCP.

Covered failure modes, per the serving contract:

* malformed and oversized JSON-RPC frames;
* a client disconnecting with an op still inflight;
* eviction of a session that holds a read-delegation lease;
* drain with a non-empty queue (everything admitted is answered);
* backpressure: a full tenant queue rejects with typed, retryable
  :class:`~repro.errors.Overloaded`.
"""

import asyncio
import contextlib
import json

import pytest

from repro import errors
from repro.server import (
    ServerClient,
    ServerConfig,
    TenantPolicy,
    VolumeServer,
    make_volumes,
)
from repro.server import protocol

pytestmark = pytest.mark.timeout(60)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


@contextlib.asynccontextmanager
async def serving(tenants=("acme",), config=None, *, verify_delegation=None,
                  policies=None):
    """A started server over fresh volumes; closes both on exit."""
    kwargs = {}
    if verify_delegation is not None:
        kwargs["verify_delegation"] = verify_delegation
    volumes = make_volumes(tenants, size=16 * 1024 * 1024,
                           inode_count=512, **kwargs)
    server = VolumeServer(volumes, config or ServerConfig(),
                          policies=policies)
    try:
        async with server:
            yield server, volumes
    finally:
        for vol in volumes.values():
            vol.close()


async def raw_connection(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def send_raw(writer, reader, payload: bytes):
    """Write raw bytes, read one response line, parse it."""
    writer.write(payload)
    await writer.drain()
    line = await reader.readline()
    assert line, "server hung up without answering"
    return json.loads(line)


class TestBasicServing:
    def test_mixed_ops_roundtrip(self):
        async def main():
            async with serving(("acme", "initech")) as (server, volumes):
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    assert await cli.ping()
                    tok_a = await cli.open_session("acme")
                    tok_b = await cli.open_session("initech")
                    # Tenants land on their own volumes.
                    await cli.call("makedirs", session=tok_a, path="/a/b")
                    assert await cli.write_file(
                        tok_a, "/a/b/f.dat", b"hello acme") == 10
                    assert await cli.read_file(
                        tok_a, "/a/b/f.dat") == b"hello acme"
                    await cli.write_file(tok_b, "/only-initech", b"x")
                    with pytest.raises(errors.NoEntry):
                        await cli.read_file(tok_a, "/only-initech")
                    st = await cli.call("stat", session=tok_a,
                                        path="/a/b/f.dat")
                    assert st["size"] == 10
                    names = (await cli.call("readdir", session=tok_a,
                                            path="/a/b"))["names"]
                    assert names == ["f.dat"]
                    await cli.rename(tok_a, "/a/b/f.dat", "/a/b/g.dat")
                    assert await cli.close_session(tok_a)
                    assert await cli.close_session(tok_b)
                    # Idempotent: closing a gone token still succeeds.
                    assert await cli.close_session(tok_a) is False
                await server.drain()
                for vol in volumes.values():
                    report = vol.fsck()
                    assert report.clean, report.summary()
        run(main())

    def test_unknown_method_and_tenant_are_typed(self):
        async def main():
            async with serving() as (server, _):
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    with pytest.raises(errors.ProtocolError):
                        await cli.call("fs.format")  # not in the op table
                    with pytest.raises(errors.TenantLimit):
                        await cli.open_session("nobody")
                    with pytest.raises(errors.SessionGone):
                        await cli.call("stat", session="acme-ff", path="/")
        run(main())

    def test_session_cap_and_release(self):
        async def main():
            pol = {"acme": TenantPolicy(max_sessions=2)}
            async with serving(policies=pol) as (server, _):
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    t1 = await cli.open_session("acme")
                    await cli.open_session("acme")
                    with pytest.raises(errors.TenantLimit) as ei:
                        await cli.open_session("acme")
                    assert ei.value.retryable
                    await cli.close_session(t1)
                    await cli.open_session("acme")  # slot freed
        run(main())


class TestProtocolRobustness:
    def test_malformed_frame_answered_and_connection_survives(self):
        async def main():
            async with serving() as (server, _):
                reader, writer = await raw_connection(server)
                try:
                    resp = await send_raw(writer, reader, b"{broken json\n")
                    assert resp["id"] is None
                    assert resp["error"]["type"] == "ProtocolError"
                    # Framing resyncs on the newline: the connection works.
                    resp = await send_raw(
                        writer, reader,
                        protocol.encode_frame({"id": 2, "method": "ping"}))
                    assert resp == {"id": 2, "result": {"pong": True}}
                    # Non-object frames and missing methods answer too.
                    resp = await send_raw(writer, reader, b"[1,2,3]\n")
                    assert resp["error"]["type"] == "ProtocolError"
                    resp = await send_raw(writer, reader, b'{"id": 9}\n')
                    assert resp["id"] == 9
                    assert resp["error"]["type"] == "ProtocolError"
                finally:
                    writer.close()
        run(main())

    def test_oversized_frame_rejected_then_disconnected(self):
        async def main():
            cfg = ServerConfig(max_frame=512)
            async with serving(config=cfg) as (server, _):
                reader, writer = await raw_connection(server)
                try:
                    big = json.dumps(
                        {"id": 1, "method": "ping",
                         "params": {"pad": "x" * 2048}}).encode() + b"\n"
                    resp = await send_raw(writer, reader, big)
                    assert resp["error"]["type"] == "ProtocolError"
                    assert "exceeds" in resp["error"]["message"]
                    # Unrecoverable framing: the server hangs up after.
                    assert await reader.readline() == b""
                finally:
                    writer.close()
        run(main())


class TestDisconnectMidOp:
    def test_client_vanishes_with_inflight_op(self):
        async def main():
            cfg = ServerConfig(debug_ops=True, lease_seconds=60)
            async with serving(config=cfg) as (server, volumes):
                reader, writer = await raw_connection(server)
                open_req = protocol.encode_frame(
                    {"id": 1, "method": "session.open", "tenant": "acme"})
                resp = await send_raw(writer, reader, open_req)
                token = resp["result"]["session"]
                # Park a worker in the op, then vanish mid-flight.
                writer.write(protocol.encode_frame(
                    {"id": 2, "method": "debug.sleep", "session": token,
                     "params": {"seconds": 0.1}}))
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # The op completes server-side; the undeliverable response
                # is dropped, the dead connection's session is reaped once
                # its inflight op finishes, and the server stays up.
                for _ in range(100):
                    if len(server.sessions) == 0:
                        break
                    await asyncio.sleep(0.01)
                assert len(server.sessions) == 0
                assert server.admission.tenants["acme"].sessions == 0
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    assert await cli.ping()
                    with pytest.raises(errors.SessionGone):
                        await cli.call("stat", session=token, path="/")
                await server.drain()
                report = volumes["acme"].fsck()
                assert report.clean, report.summary()
        run(main())


class TestEviction:
    def test_idle_lease_eviction_with_delegation_lease(self):
        async def main():
            # A long delegation window keeps the session's read-delegation
            # lease (and its deferred verification) parked at eviction
            # time; teardown must settle it, not leak it.
            cfg = ServerConfig(lease_seconds=0.05, evict_interval=0.01)
            async with serving(verify_delegation=True,
                               config=cfg) as (server, volumes):
                vol = volumes["acme"]
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    token = await cli.open_session("acme")
                    await cli.write_file(token, "/leased.dat", b"d" * 4096)
                    assert await cli.read_file(
                        token, "/leased.dat") == b"d" * 4096
                    # Go idle past the lease; the reaper evicts.
                    for _ in range(200):
                        if len(server.sessions) == 0:
                            break
                        await asyncio.sleep(0.01)
                    assert len(server.sessions) == 0
                    with pytest.raises(errors.SessionGone) as ei:
                        await cli.call("stat", session=token,
                                       path="/leased.dat")
                    assert ei.value.retryable
                    # A fresh session sees the data — nothing was lost or
                    # left owned by the evicted app.
                    token2 = await cli.open_session("acme")
                    assert await cli.read_file(
                        token2, "/leased.dat") == b"d" * 4096
                await server.drain()
                report = vol.fsck()
                assert report.clean, report.summary()
        run(main())


class TestBackpressure:
    def test_queue_full_rejects_typed_retryable(self):
        async def main():
            cfg = ServerConfig(debug_ops=True)
            pol = {"acme": TenantPolicy(max_inflight=1, queue_depth=2)}
            async with serving(config=cfg, policies=pol) as (server, _):
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    token = await cli.open_session("acme")
                    tenant = server.admission.tenants["acme"]
                    # Park the single worker first...
                    waits = [asyncio.ensure_future(cli.call(
                        "debug.sleep", session=token, seconds=0.3))]
                    while tenant.executing == 0:
                        await asyncio.sleep(0.005)
                    # ...then fill the bounded queue to its depth.
                    waits += [asyncio.ensure_future(cli.call(
                        "debug.sleep", session=token, seconds=0.01))
                        for _ in range(2)]
                    while tenant.queue.qsize() < 2:
                        await asyncio.sleep(0.005)
                    with pytest.raises(errors.Overloaded) as ei:
                        await cli.call("stat", session=token, path="/")
                    assert ei.value.retryable
                    # Closed loop: everything admitted completes.
                    results = await asyncio.gather(*waits)
                    assert all(r["slept"] for r in results)
                    # And with the queue drained, the same op is admitted.
                    st = await cli.call("stat", session=token, path="/")
                    assert st["ino"] == 0  # the root directory
        run(main())


class TestDrain:
    def test_drain_with_nonempty_queue_answers_everything(self):
        async def main():
            cfg = ServerConfig(debug_ops=True)
            pol = {"acme": TenantPolicy(max_inflight=1, queue_depth=8)}
            async with serving(config=cfg, policies=pol) as (server, volumes):
                async with await ServerClient.connect(
                        "127.0.0.1", server.port) as cli:
                    token = await cli.open_session("acme")
                    slow = asyncio.ensure_future(cli.call(
                        "debug.sleep", session=token, seconds=0.1))
                    writes = [asyncio.ensure_future(cli.call(
                        "write_file", session=token, path=f"/d{i}.dat",
                        data=protocol.pack_bytes(b"drain me")))
                        for i in range(4)]
                    await asyncio.sleep(0.02)  # queue is now non-empty
                    assert server.admission.tenants["acme"].pending > 0
                    drain_task = asyncio.ensure_future(server.drain())
                    await asyncio.sleep(0)
                    # New work during drain: typed retryable rejection.
                    with pytest.raises(errors.Overloaded) as ei:
                        await cli.call("stat", session=token, path="/")
                    assert ei.value.retryable
                    # Every op admitted before the drain is answered.
                    assert (await slow)["slept"]
                    assert [w["written"] for w in await asyncio.gather(
                        *writes)] == [8] * 4
                    await drain_task
                    assert server.admission.quiesced()
                    assert len(server.sessions) == 0
                vol = volumes["acme"]
                report = vol.fsck()
                assert report.clean, report.summary()
                # Drained state persisted: the queued writes all landed.
                with vol.session("post-drain") as s:
                    for i in range(4):
                        assert s.read_file(f"/d{i}.dat") == b"drain me"
        run(main())

    def test_drain_is_idempotent(self):
        async def main():
            async with serving() as (server, _):
                await server.drain()
                await server.drain()
                assert server.draining
        run(main())
