"""Serial/pipelined verifier equivalence (the tentpole's safety property).

The :class:`~repro.kernel.vpipeline.PipelinedVerifier` only reschedules the
per-item checks across worker shards; it must accept exactly the volumes the
serial :class:`~repro.kernel.verifier.Verifier` accepts, reject exactly the
ones it rejects, and stage byte-for-byte the same shadow updates.  We check
this over randomized trees, clean and with injected corruption (the same
torn/dangling-dentry fingerprints the fsck tests use).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fsck.inject import inject_dangling_dentry, inject_torn_dentry
from repro.fsck.volume import build_volume
from repro.kernel.verifier import Verifier, VerifyFailure
from repro.kernel.vpipeline import PipelinedVerifier

INJECTORS = {
    None: None,
    "torn-dentry": inject_torn_dentry,
    "dangling-dentry": inject_dangling_dentry,
}


def _normalize(s):
    """Order-insensitive view of a StagedUpdate (shards merge unordered)."""
    return {
        "ino": s.ino,
        "bytes_verified": s.bytes_verified,
        "created": sorted(s.created),
        "reparented": sorted(s.reparented),
        "deleted": sorted(s.deleted),
        "detached": sorted(s.detached),
        "new_children": s.new_children,
        "pages": set(s.pages),
        "size": s.size,
        "mark_deleted_pending": s.mark_deleted_pending,
        "drop_pending": s.drop_pending,
    }


def _outcome(verifier, ino):
    """(ok, payload): staged update on success, failing ino on rejection."""
    try:
        return True, _normalize(verifier.verify(ino, None))
    except VerifyFailure as vf:
        return False, vf.ino


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    files=st.integers(min_value=2, max_value=10),
    dirs=st.integers(min_value=1, max_value=3),
    payload_pages=st.integers(min_value=0, max_value=3),
    injector=st.sampled_from(sorted(INJECTORS, key=str)),
    workers=st.sampled_from([2, 4, 8]),
)
def test_pipelined_matches_serial(files, dirs, payload_pages, injector,
                                  workers):
    device, kernel, fs = build_volume(
        files=files, dirs=dirs,
        payload=b"\xc3" * (payload_pages * 4096 + 17),
        size=16 * 1024 * 1024, inode_count=128,
    )
    fs.release_all()
    if injector is not None:
        INJECTORS[injector](device)

    serial = Verifier(kernel)
    pipelined = PipelinedVerifier(kernel, workers=workers)
    rejected = 0
    for ino in sorted(kernel.shadow):
        s_ok, s_val = _outcome(serial, ino)
        p_ok, p_val = _outcome(pipelined, ino)
        assert s_ok == p_ok, (
            f"ino {ino}: serial {'accepted' if s_ok else 'rejected'} but "
            f"pipelined {'accepted' if p_ok else 'rejected'}")
        assert s_val == p_val, f"ino {ino}: staged updates diverge"
        rejected += not s_ok
    # A clean volume verifies end to end.  (Injected corruption may or may
    # not trip verify() — torn dentries are skipped by log replay and left
    # for fsck — the property above only demands both engines agree.)
    if injector is None:
        assert rejected == 0
    assert pipelined.pstats.verifications == len(kernel.shadow)
