"""Property tests for the PM device, allocator, paths and hash table."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency.rcu import RCU
from repro.core.config import ARCKFS_PLUS
from repro.libfs import paths
from repro.libfs.hashtable import DirHashTable, NodeFreelist
from repro.pm.allocator import PageAllocator
from repro.pm.device import CACHE_LINE, PMDevice
from repro.pm.layout import Geometry


class TestDeviceProps:
    @given(writes=st.lists(
        st.tuples(st.integers(0, 4000), st.binary(min_size=1, max_size=96)),
        max_size=20))
    @settings(max_examples=50)
    def test_volatile_view_is_last_write_wins(self, writes):
        dev = PMDevice(8192)
        shadow = bytearray(8192)
        for addr, data in writes:
            dev.store(addr, data)
            shadow[addr : addr + len(data)] = data
        assert dev.volatile_image() == bytes(shadow)

    @given(writes=st.lists(
        st.tuples(st.integers(0, 4000), st.binary(min_size=1, max_size=64)),
        max_size=12))
    @settings(max_examples=30)
    def test_drain_makes_volatile_durable(self, writes):
        dev = PMDevice(8192)
        for addr, data in writes:
            dev.store(addr, data)
        dev.drain()
        assert dev.durable_image() == dev.volatile_image()

    @given(writes=st.lists(
        st.tuples(st.integers(0, 1000), st.binary(min_size=1, max_size=32)),
        min_size=1, max_size=6))
    @settings(max_examples=25)
    def test_every_crash_image_is_linewise_consistent(self, writes):
        """Each crash image equals, per cache line, some version that line
        actually held — never an invented byte pattern."""
        dev = PMDevice(4096)
        versions = {}  # lineno -> set of observed line contents
        snap = bytearray(4096)
        for line in range(4096 // CACHE_LINE):
            versions[line] = {bytes(64)}
        for addr, data in writes:
            snap[addr : addr + len(data)] = data
            for line in range(addr // 64, (addr + len(data) - 1) // 64 + 1):
                versions[line].add(bytes(snap[line * 64 : line * 64 + 64]))
        for image in dev.enumerate_crash_images(limit=4096):
            for line in versions:
                got = image[line * 64 : line * 64 + 64]
                assert got in versions[line]


class TestAllocatorProps:
    @given(ops=st.lists(st.booleans(), max_size=60))
    @settings(max_examples=30)
    def test_never_double_allocates(self, ops):
        dev = PMDevice(2 * 1024 * 1024)
        geom = Geometry.compute(dev.size, 64)
        alloc = PageAllocator(dev, geom)
        live = set()
        for do_alloc in ops:
            if do_alloc or not live:
                try:
                    page = alloc.alloc()
                except OSError:
                    continue
                assert page not in live
                live.add(page)
            else:
                page = live.pop()
                alloc.free(page)
        assert alloc.allocated_set() == live

    @given(keep=st.sets(st.integers(1, 100), max_size=40))
    @settings(max_examples=25)
    def test_rebuild_exactly_matches_reachable(self, keep):
        dev = PMDevice(2 * 1024 * 1024)
        geom = Geometry.compute(dev.size, 64)
        alloc = PageAllocator(dev, geom)
        for _ in range(50):
            alloc.alloc(zero=False)
        keep = {p for p in keep if p <= geom.page_count}
        alloc.rebuild(keep)
        assert alloc.allocated_set() == keep


class TestPathProps:
    comp = st.text(alphabet="abcxyz09._-", min_size=1, max_size=10).filter(
        lambda c: c not in (".", ".."))

    @given(parts=st.lists(comp, min_size=1, max_size=6))
    def test_normalize_idempotent(self, parts):
        p = "/" + "/".join(parts)
        assert paths.normalize(paths.normalize(p)) == paths.normalize(p)

    @given(parts=st.lists(comp, min_size=1, max_size=6))
    def test_split_join_roundtrip(self, parts):
        p = "/" + "/".join(parts)
        parent, leaf = paths.split(p)
        rejoined = parent.rstrip("/") + "/" + leaf
        assert paths.normalize(rejoined) == paths.normalize(p)

    @given(a=st.lists(comp, min_size=1, max_size=4),
           b=st.lists(comp, min_size=0, max_size=3))
    def test_descendant_by_construction(self, a, b):
        ancestor = "/" + "/".join(a)
        inside = ancestor + ("/" + "/".join(b) if b else "")
        assert paths.is_descendant(ancestor, inside)

    @given(parts=st.lists(comp, min_size=1, max_size=5))
    def test_components_consistent(self, parts):
        p = "/" + "/".join(parts)
        assert paths.components(p) == parts


class TestHashTableProps:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["insert", "remove", "lookup"]),
                  st.sampled_from([b"a", b"b", b"c", b"dd", b"ee", b"f0"])),
        max_size=60))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    def test_matches_dict_model(self, ops):
        rcu = RCU()
        table = DirHashTable(ARCKFS_PLUS, rcu, NodeFreelist(), tag="prop")
        model = {}
        for kind, name in ops:
            bucket = table.bucket_of(name)
            if kind == "insert":
                if name not in model:
                    with bucket.lock:
                        node = table.freelist.alloc(name, len(model) + 1, 1, 1, 1, None)
                        table.insert_locked(node)
                    model[name] = node.ino
            elif kind == "remove":
                with bucket.lock:
                    removed = table.remove_locked(name)
                if name in model:
                    assert removed is not None and removed.ino == model.pop(name)
                else:
                    assert removed is None
            else:
                hit = table.lookup(name)
                if name in model:
                    assert hit is not None and hit.ino == model[name]
                else:
                    assert hit is None
        assert table.count == len(model)
        assert {n.name for n in table.items()} == set(model)
        rcu.barrier()  # deferred frees all run cleanly
