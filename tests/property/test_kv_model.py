"""Model-based testing of the LSM store against a plain dict."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kv.db import DB
from repro.kv.iterator import merge
from repro.kv.options import Options
from tests.conftest import build_fs

KEYS = [f"k{i}".encode() for i in range(12)]

kv_op = st.one_of(
    st.tuples(st.just("put"), st.sampled_from(KEYS), st.binary(max_size=60)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("flush")),
    st.tuples(st.just("reopen")),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(kv_op, max_size=40))
def test_db_matches_dict(ops):
    _dev, _kernel, fs = build_fs()
    options = Options(memtable_bytes=512, tables_per_level=2, levels=3)
    db = DB(fs, "/pdb", options)
    model = {}
    for op in ops:
        if op[0] == "put":
            _, k, v = op
            db.put(k, v)
            model[k] = v
        elif op[0] == "delete":
            _, k = op
            db.delete(k)
            model.pop(k, None)
        elif op[0] == "flush":
            db.flush()
        else:  # reopen
            db.close()
            db = DB(fs, "/pdb", options)
    for k in KEYS:
        assert db.get(k) == model.get(k), k
    assert [k for k, _v in db.scan()] == sorted(model)
    assert dict(db.scan()) == model
    # Recovery without clean close agrees too.
    db2 = DB(fs, "/pdb", options)
    assert dict(db2.scan()) == model


@settings(max_examples=40, deadline=None)
@given(
    streams=st.lists(
        st.lists(
            st.tuples(st.sampled_from(KEYS), st.binary(max_size=10)),
            max_size=8,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_merge_newest_wins(streams):
    """k-way merge: for duplicate keys the highest-seq entry survives."""
    seq = 0
    entry_streams = []
    expected = {}
    for stream in streams:
        entries = []
        # SSTable streams have unique, sorted keys: dedupe per stream.
        for k, v in sorted({k: v for k, v in stream}.items()):
            seq += 1
            entries.append((k, seq, v))
        entry_streams.append(entries)
    for entries in entry_streams:
        for k, s, v in entries:
            if k not in expected or s > expected[k][0]:
                expected[k] = (s, v)
    merged = list(merge([iter(e) for e in entry_streams]))
    assert [k for k, _s, _v in merged] == sorted(expected)
    for k, s, v in merged:
        assert expected[k] == (s, v)
