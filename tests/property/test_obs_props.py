"""Property tests for the metrics layer.

The rollup invariant the snapshot code (and the regression gate built on
top of it) depends on: merging per-label histograms into a base-name
aggregate must be indistinguishable from having fed the combined stream
into a single histogram — for every percentile, not just the moments.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram

BOUNDS = (10.0, 100.0, 1_000.0, 10_000.0)

samples = st.lists(
    st.floats(min_value=0.0, max_value=50_000.0,
              allow_nan=False, allow_infinity=False),
    max_size=64,
)
quantiles = st.sampled_from((1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0))


class TestHistogramMerge:
    @given(streams=st.lists(samples, min_size=1, max_size=5), q=quantiles)
    @settings(max_examples=200, deadline=None)
    def test_merged_percentiles_match_combined_histogram(self, streams, q):
        combined = Histogram("combined", bounds=BOUNDS)
        merged = Histogram("merged", bounds=BOUNDS)
        for i, stream in enumerate(streams):
            shard = Histogram(f"shard{i}", bounds=BOUNDS)
            for v in stream:
                shard.observe(v)
                combined.observe(v)
            merged.merge(shard)
        assert merged.count == combined.count
        # Summation order differs between the two paths, so `total` is only
        # equal up to float associativity; everything else is exact.
        assert merged.total == pytest.approx(combined.total)
        assert merged.min == combined.min
        assert merged.max == combined.max
        assert merged.counts == combined.counts
        assert merged.percentile(q) == combined.percentile(q)

    @given(stream=samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_into_empty_is_identity(self, stream):
        src = Histogram("src", bounds=BOUNDS)
        for v in stream:
            src.observe(v)
        dst = Histogram("dst", bounds=BOUNDS)
        dst.merge(src)
        for q in (50.0, 95.0, 99.0):
            assert dst.percentile(q) == src.percentile(q)

    @given(stream=st.lists(
        st.floats(min_value=0.0, max_value=50_000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_percentiles_bounded_and_monotone(self, stream):
        h = Histogram("h", bounds=BOUNDS)
        for v in stream:
            h.observe(v)
        prev = None
        for q in (1.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            p = h.percentile(q)
            assert h.min <= p <= h.max
            if prev is not None:
                assert p >= prev
            prev = p
