"""Crash-consistency properties under ArckFS+.

For a random prefix of operations and a crash injected inside the (k+1)-th
creation, EVERY reachable crash image must recover to either the k-op
state or the k+1-op state — the atomicity the commit-marker protocol plus
the §4.2 fence guarantee.  Under unpatched ArckFS the same scheme must
exhibit at least one torn state for *some* sequence (the bug is real), but
never lose a completed operation.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency.failpoints import failpoints
from repro.core.config import ARCKFS, ARCKFS_PLUS
from repro.errors import CrashPoint
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice
from tests.conftest import build_fs

names_st = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=40),
    min_size=1, max_size=6, unique=True,
)


def crash_during_create(config, names, crash_index):
    device, _kernel, fs = build_fs(config)

    def boom(_ctx):
        raise CrashPoint("injected")

    created = []
    for i, name in enumerate(names):
        if i == crash_index:
            failpoints.install("create.post_marker", boom)
            try:
                fs.creat(f"/{name}")
                created.append(name)  # fence raced ahead: op completed
            except CrashPoint:
                pass
            finally:
                failpoints.remove("create.post_marker")
            break
        fs.close(fs.creat(f"/{name}"))
        created.append(name)
    return device, created, names[crash_index] if crash_index < len(names) else None


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(names=names_st, data=st.data())
def test_arckfs_plus_creates_are_atomic_under_crash(names, data):
    crash_index = data.draw(st.integers(0, len(names) - 1))
    device, created, pending = crash_during_create(ARCKFS_PLUS, names, crash_index)
    allowed = {tuple(sorted(created)), tuple(sorted(created + [pending]))}
    for image in device.enumerate_crash_images(limit=8192):
        kernel = KernelController.mount(PMDevice.from_image(image))
        assert kernel.last_recovery.torn_dentries == []
        fs = LibFS(kernel, "r", uid=0)
        assert tuple(fs.readdir("/")) in allowed

    # completed ops are in EVERY image (durability of returned ops)
    for image in device.enumerate_crash_images(limit=8192):
        kernel = KernelController.mount(PMDevice.from_image(image))
        fs = LibFS(kernel, "r", uid=0)
        listing = set(fs.readdir("/"))
        assert set(created) <= listing


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(names=names_st, data=st.data())
def test_arckfs_never_loses_completed_ops_even_when_torn(names, data):
    """Even the buggy variant only corrupts the *in-flight* creation —
    completed operations are always durable (they ended with a fence)."""
    crash_index = data.draw(st.integers(0, len(names) - 1))
    device, created, _pending = crash_during_create(ARCKFS, names, crash_index)
    for image in device.enumerate_crash_images(limit=8192):
        kernel = KernelController.mount(PMDevice.from_image(image))
        fs = LibFS(kernel, "r", uid=0)
        listing = set(fs.readdir("/"))
        assert set(created) <= listing
