"""Property tests: binary layouts round-trip for all field values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pm.layout import (
    Dentry,
    Geometry,
    InodeRecord,
    NTAILS,
    PageHeader,
    Superblock,
)

u8 = st.integers(0, 2**8 - 1)
u16 = st.integers(0, 2**16 - 1)
u32 = st.integers(0, 2**32 - 1)
u64 = st.integers(0, 2**64 - 1)
names = st.binary(min_size=1, max_size=255)


class TestRoundTrips:
    @given(magic=u64, size=u64, block=u32, ninodes=u32, itable=u64,
           bitmap=u64, data=u64, root=u64)
    def test_superblock(self, magic, size, block, ninodes, itable, bitmap, data, root):
        sb = Superblock(magic, size, block, ninodes, itable, bitmap, data, root)
        assert Superblock.unpack(sb.pack()) == sb
        assert len(sb.pack()) == Superblock.SIZE

    @given(magic=u32, itype=u8, mode=u16, uid=u32, gen=u32, size=u64,
           nlink=u32, seq=u32, index_root=u64,
           tails=st.lists(u64, min_size=NTAILS, max_size=NTAILS))
    def test_inode_record(self, magic, itype, mode, uid, gen, size, nlink,
                          seq, index_root, tails):
        rec = InodeRecord(magic, itype, mode, uid, gen, size, nlink, seq,
                          index_root, tails)
        back = InodeRecord.unpack(rec.pack())
        assert back == rec
        assert len(rec.pack()) == InodeRecord.SIZE

    @given(ino=u64, gen=u32, seq=u32, itype=u8, deleted=u8, name=names)
    def test_dentry(self, ino, gen, seq, itype, deleted, name):
        rec_len = Dentry.record_len(name)
        d = Dentry(ino, gen, seq, rec_len, len(name), itype, deleted, name)
        back = Dentry.unpack(d.pack())
        assert back == d
        assert len(d.pack()) == rec_len
        assert rec_len % 8 == 0

    @given(next_page=u64, used=u16, kind=u16)
    def test_page_header(self, next_page, used, kind):
        hdr = PageHeader(next_page, used, kind)
        assert PageHeader.unpack(hdr.pack()) == hdr


class TestGeometry:
    @given(size=st.integers(1 << 20, 1 << 28), inodes=st.integers(16, 4096))
    @settings(max_examples=50)
    def test_regions_disjoint_and_ordered(self, size, inodes):
        g = Geometry.compute(size, inodes)
        assert g.itable_off >= Superblock.SIZE
        assert g.bitmap_off >= g.itable_off + inodes * InodeRecord.SIZE
        assert g.data_off >= g.bitmap_off + (g.page_count + 7) // 8
        assert g.data_off % 4096 == 0
        if g.page_count:
            assert g.page_off(g.page_count) + 4096 <= size

    @given(size=st.integers(1 << 20, 1 << 26), inodes=st.integers(16, 1024))
    @settings(max_examples=30)
    def test_inode_offsets_distinct(self, size, inodes):
        g = Geometry.compute(size, inodes)
        offs = {g.inode_off(i) for i in range(inodes)}
        assert len(offs) == inodes
