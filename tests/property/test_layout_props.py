"""Property tests: binary layouts round-trip for all field values."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.pm.layout import (
    ArrayLabel,
    Dentry,
    Geometry,
    InodeRecord,
    NTAILS,
    PageHeader,
    Superblock,
)

u8 = st.integers(0, 2**8 - 1)
u16 = st.integers(0, 2**16 - 1)
u32 = st.integers(0, 2**32 - 1)
u64 = st.integers(0, 2**64 - 1)
names = st.binary(min_size=1, max_size=255)


class TestRoundTrips:
    @given(magic=u64, size=u64, block=u32, ninodes=u32, itable=u64,
           bitmap=u64, data=u64, root=u64, devices=u32, stripe=u32)
    def test_superblock(self, magic, size, block, ninodes, itable, bitmap,
                        data, root, devices, stripe):
        sb = Superblock(magic, size, block, ninodes, itable, bitmap, data,
                        root, devices=devices, stripe_pages=stripe)
        assert Superblock.unpack(sb.pack()) == sb
        assert len(sb.pack()) == Superblock.SIZE

    @given(idx=u32, count=u32, stripe=u32, dev_size=u64)
    def test_array_label(self, idx, count, stripe, dev_size):
        label = ArrayLabel(idx, count, stripe, dev_size)
        back = ArrayLabel.unpack(label.pack())
        assert back == label
        assert back.valid
        assert len(label.pack()) == ArrayLabel.SIZE

    @given(magic=u32, itype=u8, mode=u16, uid=u32, gen=u32, size=u64,
           nlink=u32, seq=u32, index_root=u64,
           tails=st.lists(u64, min_size=NTAILS, max_size=NTAILS))
    def test_inode_record(self, magic, itype, mode, uid, gen, size, nlink,
                          seq, index_root, tails):
        rec = InodeRecord(magic, itype, mode, uid, gen, size, nlink, seq,
                          index_root, tails)
        back = InodeRecord.unpack(rec.pack())
        assert back == rec
        assert len(rec.pack()) == InodeRecord.SIZE

    @given(ino=u64, gen=u32, seq=u32, itype=u8, deleted=u8, name=names)
    def test_dentry(self, ino, gen, seq, itype, deleted, name):
        rec_len = Dentry.record_len(name)
        d = Dentry(ino, gen, seq, rec_len, len(name), itype, deleted, name)
        back = Dentry.unpack(d.pack())
        assert back == d
        assert len(d.pack()) == rec_len
        assert rec_len % 8 == 0

    @given(next_page=u64, used=u16, kind=u16)
    def test_page_header(self, next_page, used, kind):
        hdr = PageHeader(next_page, used, kind)
        assert PageHeader.unpack(hdr.pack()) == hdr


class TestGeometry:
    @given(size=st.integers(1 << 20, 1 << 28), inodes=st.integers(16, 4096))
    @settings(max_examples=50)
    def test_regions_disjoint_and_ordered(self, size, inodes):
        g = Geometry.compute(size, inodes)
        assert g.itable_off >= Superblock.SIZE
        assert g.bitmap_off >= g.itable_off + inodes * InodeRecord.SIZE
        assert g.data_off >= g.bitmap_off + (g.page_count + 7) // 8
        assert g.data_off % 4096 == 0
        if g.page_count:
            assert g.page_off(g.page_count) + 4096 <= size

    @given(size=st.integers(1 << 20, 1 << 26), inodes=st.integers(16, 1024))
    @settings(max_examples=30)
    def test_inode_offsets_distinct(self, size, inodes):
        g = Geometry.compute(size, inodes)
        offs = {g.inode_off(i) for i in range(inodes)}
        assert len(offs) == inodes


class TestStripedGeometry:
    striped = given(size=st.integers(1 << 22, 1 << 26),
                    inodes=st.integers(16, 512),
                    devices=st.integers(1, 8),
                    stripe=st.integers(1, 16))

    @striped
    @settings(max_examples=50)
    def test_page_map_bijective_and_in_bounds(self, size, inodes, devices,
                                              stripe):
        g = Geometry.compute(size, inodes, devices=devices,
                             stripe_pages=stripe)
        assume(g.page_count > 0)
        seen = set()
        for p in range(1, g.page_count + 1):
            off = g.page_off(p)
            d, local = g.page_device(p)
            # Every page maps to exactly one device-local page slot...
            assert 0 <= d < max(1, g.devices)
            assert g.data_off <= local <= g.dev_size - 4096
            assert (local - g.data_off) % 4096 == 0
            # ...the flat offset agrees, and no two pages collide.
            assert off == d * g.dev_size + local
            assert off not in seen
            seen.add(off)

    @striped
    @settings(max_examples=50)
    def test_extent_runs_cover_exactly(self, size, inodes, devices, stripe):
        g = Geometry.compute(size, inodes, devices=devices,
                             stripe_pages=stripe)
        assume(g.page_count >= 2)
        start = 1 + (size % max(1, g.page_count - 1))
        npages = min(g.page_count - start + 1, 3 * stripe + 1)
        runs = list(g.extent_runs(start, npages))
        # Exact coverage: the runs partition [start, start+npages).
        covered = []
        for run_start, count in runs:
            assert count >= 1
            covered.extend(range(run_start, run_start + count))
        assert covered == list(range(start, start + npages))
        # Physical contiguity within every run.
        for run_start, count in runs:
            base = g.page_off(run_start)
            for i in range(count):
                assert g.page_off(run_start + i) == base + i * 4096
        # On a striped array no run crosses a stripe-unit boundary.
        if g.devices > 1:
            for run_start, count in runs:
                unit = (run_start - 1) // g.stripe_pages
                assert (run_start + count - 2) // g.stripe_pages == unit
