"""Concurrency properties of the pooled PM page allocator.

Satellite 3: under real threads hammering ``alloc``/``alloc_many``/``free``,
no page is ever handed out twice; pools drain on orderly shutdown; after a
simulated crash with warm pools, ``rebuild`` reclaims every reservation and
nothing is double-allocated on the next mount.
"""

import random
import threading

from repro.core.mkfs import load_geometry, mkfs
from repro.errors import NoSpace
from repro.pm.allocator import PageAllocator
from repro.pm.device import PMDevice

THREADS = 8
OPS_PER_THREAD = 300


def make_world(*, size=8 * 1024 * 1024, pool_pages=None):
    device = PMDevice(size, crash_tracking=False)
    geom = mkfs(device, inode_count=64)
    return device, geom, PageAllocator(device, geom, pool_pages=pool_pages)


def hammer(alloc, seed, errors, held_per_thread, tid):
    rng = random.Random(seed)
    held = held_per_thread[tid]
    try:
        for _ in range(OPS_PER_THREAD):
            r = rng.random()
            if r < 0.55 or not held:
                try:
                    held.append(alloc.alloc(zero=False))
                except NoSpace:
                    pass
            elif r < 0.75:
                try:
                    held.extend(alloc.alloc_many(rng.randint(2, 9),
                                                 zero=False))
                except NoSpace:
                    pass
            else:
                alloc.free(held.pop(rng.randrange(len(held))))
    except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
        errors.append(exc)


def run_hammer(alloc, *, seed):
    errors = []
    held = [[] for _ in range(THREADS)]
    workers = [
        threading.Thread(target=hammer,
                         args=(alloc, seed + tid, errors, held, tid))
        for tid in range(THREADS)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not errors, errors
    return held


def test_no_page_handed_out_twice():
    _device, geom, alloc = make_world()
    held = run_hammer(alloc, seed=1234)
    flat = [p for per in held for p in per]
    # No page is live in two hands at once...
    assert len(flat) == len(set(flat))
    # ...the allocator agrees about who holds what...
    assert alloc.allocated_set() == set(flat)
    # ...and pools never overlap either the held set or each other.
    assert not alloc.pooled_pages() & set(flat)
    assert alloc.free_pages() == geom.page_count - len(flat)


def test_small_pools_under_pressure_steal_not_duplicate():
    # A tiny volume + big pools forces refill failures and cross-pool
    # stealing; the no-duplicate invariant must survive.
    _device, _geom, alloc = make_world(size=1024 * 1024, pool_pages=16)
    held = run_hammer(alloc, seed=99)
    flat = [p for per in held for p in per]
    assert len(flat) == len(set(flat))
    assert alloc.allocated_set() == set(flat)


def test_orderly_shutdown_drains_every_pool():
    _device, geom, alloc = make_world()
    held = run_hammer(alloc, seed=7)
    flat = [p for per in held for p in per]
    alloc.drain_pools()
    assert alloc.pooled_pages() == set()
    # Durable bitmap == exactly the held pages: nothing reserved left behind.
    live = {p for p in range(1, geom.page_count + 1) if alloc.is_allocated(p)}
    assert live == set(flat)


def test_rebuild_reclaims_pools_after_crash():
    # Generous volume: pools must stay warm, not be cannibalized by steals.
    device, _geom, alloc = make_world(size=32 * 1024 * 1024)
    held = run_hammer(alloc, seed=42)
    flat = [p for per in held for p in per]
    # Guarantee a warm pool at "crash" time: one more alloc refills the
    # main thread's pool and leaves the rest of the batch reserved.
    flat.append(alloc.alloc(zero=False))
    reserved = alloc.pooled_pages()
    assert reserved

    # Crash: whatever made it to durable media is the next mount's world.
    image = device.durable_image()
    dev2 = PMDevice.from_image(image, crash_tracking=False)
    geom2 = load_geometry(dev2)
    alloc2 = PageAllocator(dev2, geom2)

    # Reserved bits survived the crash (leak-only story)...
    for page_no in reserved:
        assert alloc2.is_allocated(page_no)
    # ...and recovery reclaims exactly the unreachable ones.
    reclaimed = alloc2.rebuild(flat)
    assert reclaimed == len(reserved)
    assert alloc2.free_pages() == geom2.page_count - len(flat)

    # The next mount never double-allocates: everything handed out now is
    # disjoint from what survived.
    fresh = alloc2.alloc_many(min(64, alloc2.free_pages()), zero=False)
    assert not set(fresh) & set(flat)
