"""Model-based testing: random operation sequences on ArckFS+ must agree
with an in-memory reference model, and survive release/re-acquire cycles
and remount."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ARCKFS_PLUS
from repro.errors import FSError
from repro.kernel.controller import KernelController
from repro.libfs.libfs import LibFS
from repro.pm.device import PMDevice

DIRS = ["/d0", "/d1", "/d0/sub"]
NAMES = ["a", "b", "c"]

op_st = st.one_of(
    st.tuples(st.just("create"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.binary(max_size=200)),
    st.tuples(st.just("unlink"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("write"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.binary(max_size=300), st.integers(0, 5000)),
    st.tuples(st.just("rename"), st.sampled_from(DIRS), st.sampled_from(NAMES),
              st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("release_all")),
)


def fresh():
    device = PMDevice(32 * 1024 * 1024)
    kernel = KernelController.fresh(device, inode_count=256, config=ARCKFS_PLUS)
    fs = LibFS(kernel, "model", uid=0, config=ARCKFS_PLUS)
    for d in DIRS:
        fs.makedirs(d)
    return device, kernel, fs


class Model:
    """Reference: path -> bytes content."""

    def __init__(self):
        self.files = {}

    def create(self, path, data):
        if path in self.files:
            return False
        self.files[path] = data
        return True

    def unlink(self, path):
        return self.files.pop(path, None) is not None

    def write(self, path, data, off):
        if path not in self.files:
            return False
        cur = bytearray(self.files[path])
        if len(cur) < off + len(data):
            cur.extend(b"\0" * (off + len(data) - len(cur)))
        cur[off : off + len(data)] = data
        self.files[path] = bytes(cur)
        return True

    def rename(self, old, new):
        if old not in self.files or new in self.files or old == new:
            return False
        self.files[new] = self.files.pop(old)
        return True


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(ops=st.lists(op_st, max_size=30))
def test_random_ops_match_reference_model(ops):
    device, kernel, fs = fresh()
    model = Model()
    for op in ops:
        kind = op[0]
        try:
            if kind == "create":
                _, d, n, data = op
                path = f"{d}/{n}"
                ok = model.create(path, data)
                if ok:
                    fd = fs.creat(path)
                    fs.pwrite(fd, data, 0)
                    fs.close(fd)
                else:
                    try:
                        fs.creat(path)
                        raise AssertionError("create should have failed")
                    except FSError:
                        pass
            elif kind == "unlink":
                _, d, n = op
                path = f"{d}/{n}"
                ok = model.unlink(path)
                if ok:
                    fs.unlink(path)
                else:
                    try:
                        fs.unlink(path)
                        raise AssertionError("unlink should have failed")
                    except FSError:
                        pass
            elif kind == "write":
                _, d, n, data, off = op
                path = f"{d}/{n}"
                if model.write(path, data, off):
                    fd = fs.open(path)
                    fs.pwrite(fd, data, off)
                    fs.close(fd)
            elif kind == "rename":
                _, d1, n1, d2, n2 = op
                old, new = f"{d1}/{n1}", f"{d2}/{n2}"
                if model.rename(old, new):
                    fs.rename(old, new)
            elif kind == "release_all":
                fs.release_all()
        except FSError as exc:  # pragma: no cover - any mismatch fails below
            raise AssertionError(f"unexpected FS error for {op}: {exc}") from exc

    # Full agreement with the model...
    for path, data in model.files.items():
        assert fs.read_file(path) == data, path
    for d in DIRS:
        expected = sorted(
            p.rsplit("/", 1)[1]
            for p in model.files
            if p.rsplit("/", 1)[0] == d
        )
        listed = [n for n in fs.readdir(d) if n != "sub"]
        assert listed == expected

    # ...including after a full release + verification of everything...
    fs.release_all()
    assert kernel.audit_tree() == []

    # ...and after a remount from the durable image.
    device.drain()
    kernel2 = KernelController.mount(PMDevice.from_image(device.durable_image()))
    assert kernel2.last_recovery.clean
    fs2 = LibFS(kernel2, "model2", uid=0)
    for path, data in model.files.items():
        assert fs2.read_file(path) == data, path
